//! Crash-recovery equivalence tests for the durable traffic state: a
//! recovered process must be epoch-for-epoch identical to the process
//! that never crashed, torn tails must truncate-and-continue, corruption
//! must quarantine-and-degrade, and absolute-expiry journaling must keep
//! TTL closures honest across downtime.

use std::path::PathBuf;
use std::sync::Arc;

use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
use arp_roadnet::category::RoadCategory;
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::geo::Point;
use arp_roadnet::weight::WeightView;
use arp_traffic::journal::read_journal as read_journal_outcome;
use arp_traffic::{
    DurabilityConfig, FsyncPolicy, RecoveryStatus, TrafficDelta, TrafficFeed, TrafficState,
    JOURNAL_FILE,
};

fn line(n: usize) -> Arc<RoadNetwork> {
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_node(Point::new(i as f64 * 0.01, 0.0)))
        .collect();
    for i in 0..n - 1 {
        b.add_bidirectional(
            ids[i],
            ids[i + 1],
            EdgeSpec::category(RoadCategory::Primary),
        );
    }
    Arc::new(b.build())
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("arp_durability_test_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &PathBuf) -> DurabilityConfig {
    let mut cfg = DurabilityConfig::new(dir);
    // Most tests want the full journal preserved; checkpointing is
    // exercised explicitly where it matters.
    cfg.snapshot_every = 0;
    cfg
}

/// Drives the same scripted delta/tick sequence against any state.
fn drive(state: &TrafficState, feed: &TrafficFeed) {
    state
        .apply_delta(&TrafficDelta::parse("cat:primary*1.5; close:1@2").unwrap())
        .unwrap();
    state.advance_tick(feed).unwrap();
    state
        .apply_delta(&TrafficDelta::parse("edge:3*2.5; close:5").unwrap())
        .unwrap();
    state.advance_tick(feed).unwrap();
    state.advance_tick(feed).unwrap();
    state
        .apply_delta(&TrafficDelta::parse("reopen:5; edge:3*1.0").unwrap())
        .unwrap();
}

#[test]
fn recovery_is_epoch_for_epoch_identical_to_the_uncrashed_run() {
    let net = line(8);
    let feed = TrafficFeed::new(7, arp_traffic::CityProfile::for_city_name("melbourne"));

    // The never-crashed process.
    let reference = TrafficState::new(Arc::clone(&net));
    drive(&reference, &feed);

    // The crashed process: same sequence, durable, then dropped.
    let dir = temp_dir("equivalence");
    let (durable, report) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert_eq!(report.status, RecoveryStatus::Clean);
    drive(&durable, &feed);
    let epoch_before = durable.epoch();
    drop(durable);

    let (recovered, report) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert_eq!(report.status, RecoveryStatus::Replayed);
    assert_eq!(report.replayed_records, 6);
    assert_eq!(report.torn_tails, 0);
    assert!(report.quarantined.is_empty());
    assert_eq!(recovered.epoch(), epoch_before);
    assert_eq!(recovered.tick(), reference.tick());
    assert_eq!(
        recovered.snapshot().column(),
        reference.snapshot().column(),
        "recovered weight column must be byte-identical"
    );
    assert_eq!(recovered.overlay_snapshot(), reference.overlay_snapshot());

    // And the recovered state keeps evolving identically.
    recovered.advance_tick(&feed).unwrap();
    reference.advance_tick(&feed).unwrap();
    assert_eq!(recovered.epoch(), reference.epoch());
    assert_eq!(recovered.snapshot().column(), reference.snapshot().column());
}

#[test]
fn second_recovery_without_new_writes_is_clean_and_identical() {
    let net = line(8);
    let dir = temp_dir("idempotent");
    let feed = TrafficFeed::quiet();
    let (durable, _) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    drive(&durable, &feed);
    let overlay = durable.overlay_snapshot();
    let (epoch, tick) = (durable.epoch(), durable.tick());
    drop(durable);

    // First recovery replays and writes a fresh checkpoint…
    let (first, report) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert_eq!(report.status, RecoveryStatus::Replayed);
    drop(first);
    // …so the second one is a pure snapshot load: clean, same state.
    let (second, report) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert_eq!(report.status, RecoveryStatus::Clean);
    assert_eq!(report.replayed_records, 0);
    assert_eq!((second.epoch(), second.tick()), (epoch, tick));
    assert_eq!(second.overlay_snapshot(), overlay);
}

#[test]
fn ttl_expiring_mid_downtime_is_expired_after_recovery() {
    let net = line(8);
    let quiet = TrafficFeed::quiet();

    // Journal: close edge 2 at tick 0 with TTL 2 (absolute expiry 2),
    // then ticks up to 3 — the closure dies at tick 2, *inside* the
    // journaled history. A replayer that re-interpreted the TTL as
    // relative-to-replay-time would resurrect it.
    let dir = temp_dir("ttl_downtime");
    let (durable, _) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    durable
        .apply_delta(&TrafficDelta::parse("close:2@2").unwrap())
        .unwrap();
    for _ in 0..3 {
        durable.advance_tick(&quiet).unwrap();
    }
    assert_eq!(durable.snapshot().closures(), 0, "expired while alive");
    let column_before = durable.snapshot().column().to_vec();
    drop(durable);

    let (recovered, report) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert_eq!(report.status, RecoveryStatus::Replayed);
    assert_eq!(
        recovered.snapshot().closures(),
        0,
        "replay must not resurrect a closure that expired mid-history"
    );
    assert!(!recovered.overlay_snapshot().is_closed(2));
    assert_eq!(recovered.snapshot().column(), &column_before[..]);
    assert_eq!(recovered.tick(), 3);
}

#[test]
fn ttl_still_live_at_crash_expires_on_schedule_after_recovery() {
    let net = line(8);
    let quiet = TrafficFeed::quiet();
    let dir = temp_dir("ttl_live");
    let (durable, _) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    durable.advance_tick(&quiet).unwrap(); // tick 1
    durable
        .apply_delta(&TrafficDelta::parse("close:4@3").unwrap()) // expiry 4
        .unwrap();
    drop(durable);

    let (recovered, _) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert!(
        recovered.overlay_snapshot().is_closed(4),
        "expiry 4 > tick 1"
    );
    recovered.advance_tick(&quiet).unwrap(); // 2
    recovered.advance_tick(&quiet).unwrap(); // 3
    assert!(recovered.overlay_snapshot().is_closed(4));
    let outcome = recovered.advance_tick(&quiet).unwrap(); // 4
    assert_eq!(outcome.expired, 1, "expires exactly at its original tick");
    assert!(!recovered.overlay_snapshot().is_closed(4));
}

#[test]
fn torn_tail_truncates_and_replays_the_prefix() {
    let net = line(8);
    let dir = temp_dir("torn");
    let (durable, _) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    durable
        .apply_delta(&TrafficDelta::parse("cat:primary*1.5").unwrap())
        .unwrap();
    durable
        .apply_delta(&TrafficDelta::parse("close:3").unwrap())
        .unwrap();
    drop(durable);

    // Chop mid-way into the last record: the crash-during-append shape.
    let journal = dir.join(JOURNAL_FILE);
    let len = std::fs::metadata(&journal).unwrap().len();
    arp_traffic::journal::truncate_journal(&journal, len - 3).unwrap();

    let (recovered, report) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert_eq!(report.status, RecoveryStatus::Replayed);
    assert_eq!(report.torn_tails, 1);
    assert_eq!(report.replayed_records, 1);
    assert_eq!(recovered.epoch(), 1, "only the intact record replays");
    assert!(!recovered.overlay_snapshot().is_closed(3));
    // The recovered process keeps serving and journaling normally.
    recovered
        .apply_delta(&TrafficDelta::parse("close:6").unwrap())
        .unwrap();
    assert_eq!(recovered.epoch(), 2);
}

#[test]
fn corrupt_journal_is_quarantined_and_state_degrades_to_base() {
    let net = line(8);
    let dir = temp_dir("quarantine");
    let (durable, _) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    durable
        .apply_delta(&TrafficDelta::parse("cat:primary*2.0").unwrap())
        .unwrap();
    durable
        .apply_delta(&TrafficDelta::parse("close:3").unwrap())
        .unwrap();
    drop(durable);

    // Flip a bit in the FIRST record's payload: mid-file corruption.
    let journal = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&journal).unwrap();
    bytes[10] ^= 0x08;
    std::fs::write(&journal, &bytes).unwrap();

    let (recovered, report) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert_eq!(report.status, RecoveryStatus::Degraded);
    assert_eq!(report.quarantined, vec![JOURNAL_FILE.to_string()]);
    assert_eq!(
        report.replayed_records, 0,
        "a corrupt journal replays nothing"
    );
    // No snapshot existed, so the degraded state is the base weights.
    assert_eq!(recovered.epoch(), 0);
    assert_eq!(recovered.snapshot().column(), net.weights());
    assert!(dir.join("journal.wal.quarantine").exists());
    // Serving continues: new deltas journal into a fresh file.
    recovered
        .apply_delta(&TrafficDelta::parse("close:1").unwrap())
        .unwrap();
    let outcome = read_journal_outcome(&journal).unwrap();
    assert_eq!(outcome.records.len(), 1);
}

#[test]
fn checkpoints_bound_the_journal_and_survive_restart() {
    let net = line(8);
    let dir = temp_dir("checkpoint");
    let mut cfg = DurabilityConfig::new(&dir);
    cfg.snapshot_every = 2;
    cfg.retain_snapshots = 2;
    cfg.fsync = FsyncPolicy::Interval(4);
    let (durable, _) = TrafficState::recover_with(Arc::clone(&net), cfg.clone()).unwrap();
    for i in 0..5 {
        durable
            .apply_delta(&TrafficDelta::parse(&format!("edge:{i}*2.0")).unwrap())
            .unwrap();
    }
    // 5 appends with snapshot_every=2: checkpoints after #2 and #4, so
    // exactly one record (the 5th) remains journaled.
    let outcome = read_journal_outcome(&dir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(outcome.records.len(), 1);
    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("snap-") && n.ends_with(".arps"))
        .collect();
    assert_eq!(snapshots.len(), 2, "retention keeps exactly 2 snapshots");
    let overlay = durable.overlay_snapshot();
    let epoch = durable.epoch();
    drop(durable);

    let (recovered, report) = TrafficState::recover_with(Arc::clone(&net), cfg).unwrap();
    assert_eq!(report.snapshot_epoch, Some(4));
    assert_eq!(report.replayed_records, 1);
    assert_eq!(recovered.epoch(), epoch);
    assert_eq!(recovered.overlay_snapshot(), overlay);
}

#[test]
fn flush_snapshot_makes_the_next_recovery_clean() {
    let net = line(8);
    let dir = temp_dir("flush");
    let (durable, _) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert!(durable.durable());
    drive(&durable, &TrafficFeed::quiet());
    assert!(durable.flush_snapshot().unwrap(), "flushed a checkpoint");
    let epoch = durable.epoch();
    drop(durable);

    let (recovered, report) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    assert_eq!(report.status, RecoveryStatus::Clean);
    assert_eq!(report.replayed_records, 0, "snapshot covers everything");
    assert_eq!(recovered.epoch(), epoch);

    // Non-durable states report flush as a no-op.
    let plain = TrafficState::new(net);
    assert!(!plain.durable());
    assert!(!plain.flush_snapshot().unwrap());
}

#[test]
fn journal_fault_hook_rejects_the_delta_without_moving_the_epoch() {
    let net = line(8);
    let dir = temp_dir("faulthook");
    let (durable, _) = TrafficState::recover_with(Arc::clone(&net), config(&dir)).unwrap();
    durable
        .apply_delta(&TrafficDelta::parse("cat:primary*1.5").unwrap())
        .unwrap();
    assert_eq!(durable.epoch(), 1);
    durable.set_journal_fault_hook(|| Err("disk full (injected)".to_string()));
    let err = durable
        .apply_delta(&TrafficDelta::parse("close:3").unwrap())
        .unwrap_err();
    assert!(matches!(err, arp_traffic::TrafficError::Journal { .. }));
    assert!(err.to_string().contains("disk full"));
    assert_eq!(durable.epoch(), 1, "epoch must not move on journal failure");
    assert_eq!(durable.tick(), 0);
    assert!(!durable.overlay_snapshot().is_closed(3));
    // A failed tick never happened either: tick counter stays put.
    let err = durable.advance_tick(&TrafficFeed::quiet()).unwrap_err();
    assert!(matches!(err, arp_traffic::TrafficError::Journal { .. }));
    assert_eq!(durable.tick(), 0);
    // Journal on disk holds exactly the one accepted record.
    let outcome = read_journal_outcome(&dir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(outcome.records.len(), 1);
    // Clearing the hook restores service.
    durable.set_journal_fault_hook(|| Ok(()));
    durable
        .apply_delta(&TrafficDelta::parse("close:3").unwrap())
        .unwrap();
    assert_eq!(durable.epoch(), 2);
}
