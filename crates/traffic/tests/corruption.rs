//! Property tests for journal corruption handling: for **any**
//! prefix-truncation and **any** single bit-flip of a journal, recovery
//! either replays a valid prefix of the original history or quarantines
//! the file — it never panics, and it never publishes a state that the
//! delta validator would reject.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
use arp_roadnet::category::RoadCategory;
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::geo::Point;
use arp_roadnet::weight::{Weight, WeightView};
use arp_traffic::{
    DurabilityConfig, RecoveryStatus, TrafficDelta, TrafficFeed, TrafficState, JOURNAL_FILE,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn line(n: usize) -> Arc<RoadNetwork> {
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_node(Point::new(i as f64 * 0.01, 0.0)))
        .collect();
    for i in 0..n - 1 {
        b.add_bidirectional(
            ids[i],
            ids[i + 1],
            EdgeSpec::category(RoadCategory::Primary),
        );
    }
    Arc::new(b.build())
}

/// The shared fixture: one journal built by driving a real durable
/// state through a mixed delta/tick history, plus the reference weight
/// column for every epoch of that history (epoch 0 = base weights).
struct Fixture {
    net: Arc<RoadNetwork>,
    journal_bytes: Vec<u8>,
    /// `columns[e]` is the weight column published at epoch `e`.
    columns: Vec<Vec<Weight>>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();
static CASE: AtomicUsize = AtomicUsize::new(0);

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let net = line(12);
        let dir =
            std::env::temp_dir().join(format!("arp_corruption_fixture_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = DurabilityConfig::new(&dir);
        cfg.snapshot_every = 0; // keep the whole history in the journal
        let (state, _) = TrafficState::recover_with(Arc::clone(&net), cfg).unwrap();
        let feed = TrafficFeed::new(11, arp_traffic::CityProfile::for_city_name("dhaka"));
        let mut columns = vec![net.weights().to_vec()];
        let script = [
            "cat:primary*1.6; close:2@2",
            "edge:5*2.5; close:8",
            "close:4@@7; edge:9*1.5",
            "reopen:8; cat:primary*1.2",
            "close:1@3",
            "edge:5*1.0; clear",
            "cat:primary*1.9; close:6@1",
        ];
        for (i, delta) in script.iter().enumerate() {
            state
                .apply_delta(&TrafficDelta::parse(delta).unwrap())
                .unwrap();
            columns.push(state.snapshot().column().to_vec());
            if i % 2 == 1 {
                state.advance_tick(&feed).unwrap();
                columns.push(state.snapshot().column().to_vec());
            }
        }
        let journal_bytes = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        Fixture {
            net,
            journal_bytes,
            columns,
        }
    })
}

/// Recovers from a journal mutated by `mutate` and checks the safety
/// properties shared by every corruption shape.
fn check_recovery(mutate: impl FnOnce(&mut Vec<u8>)) -> Result<(), TestCaseError> {
    let fx = fixture();
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir: PathBuf =
        std::env::temp_dir().join(format!("arp_corruption_case_{}_{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut bytes = fx.journal_bytes.clone();
    mutate(&mut bytes);
    std::fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();

    let mut cfg = DurabilityConfig::new(&dir);
    cfg.snapshot_every = 0;
    // Must not panic and must not refuse to start.
    let (state, report) = TrafficState::recover_with(Arc::clone(&fx.net), cfg).unwrap();

    // The published state is always a valid prefix of the original
    // history: same epoch numbering, byte-identical weight column.
    let epoch = state.epoch() as usize;
    prop_assert!(
        epoch < fx.columns.len(),
        "recovered epoch {epoch} beyond the original history"
    );
    let snapshot = state.snapshot();
    prop_assert_eq!(
        snapshot.column(),
        &fx.columns[epoch][..],
        "recovered column must match the original at epoch {}",
        epoch
    );

    // The recovered overlay re-validates: rebuilding it from its own
    // entries (factor/category checks) and re-checking edge ranges must
    // succeed — corruption can never smuggle in invalid state.
    let overlay = state.overlay_snapshot();
    let rebuilt = arp_traffic::TrafficOverlay::from_parts(
        &overlay.category_factor_entries(),
        &overlay.edge_factor_entries(),
        &overlay.closure_entries(),
    );
    prop_assert!(rebuilt.is_some(), "recovered overlay fails re-validation");
    let num_edges = fx.net.num_edges();
    prop_assert!(overlay
        .edge_factor_entries()
        .iter()
        .all(|&(edge, _)| (edge as usize) < num_edges));
    prop_assert!(overlay
        .closure_entries()
        .iter()
        .all(|&(edge, _)| (edge as usize) < num_edges));

    // A quarantine is always surfaced as a degraded verdict, and a
    // degraded verdict always has something quarantined.
    prop_assert_eq!(
        report.status == RecoveryStatus::Degraded,
        !report.quarantined.is_empty()
    );

    // The recovered state still serves and accepts new deltas.
    state
        .apply_delta(&TrafficDelta::parse("close:0").unwrap())
        .map_err(|e| TestCaseError::fail(format!("post-recovery delta rejected: {e}")))?;

    drop(state);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any prefix-truncation recovers to a valid prefix (or quarantines).
    #[test]
    fn any_prefix_truncation_recovers_or_quarantines(cut in 0usize..4096) {
        let len = fixture().journal_bytes.len();
        let keep = cut % (len + 1);
        check_recovery(|bytes| bytes.truncate(keep))?;
    }

    /// Any single bit-flip recovers to a valid prefix (or quarantines).
    #[test]
    fn any_single_bit_flip_recovers_or_quarantines(pos in 0usize..65536) {
        let len = fixture().journal_bytes.len();
        let bit = pos % (len * 8);
        check_recovery(|bytes| bytes[bit / 8] ^= 1 << (bit % 8))?;
    }

    /// Truncation and a bit-flip combined still never panic and never
    /// publish an invalid state.
    #[test]
    fn truncation_plus_bit_flip_is_still_safe(cut in 1usize..4096, pos in 0usize..65536) {
        let len = fixture().journal_bytes.len();
        let keep = 1 + cut % len;
        check_recovery(|bytes| {
            bytes.truncate(keep);
            let bit = pos % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        })?;
    }
}
