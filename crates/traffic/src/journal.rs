//! The write-ahead delta journal: every accepted delta batch is appended
//! here **before** the epoch swap publishes, so a crash can lose at most
//! work that was never acknowledged.
//!
//! ## Record format
//!
//! The journal is a flat file of length-prefixed, CRC-checksummed
//! records (all integers little-endian):
//!
//! ```text
//! record  := [len: u32] [crc: u32] [payload: len bytes]
//! payload := [epoch: u64] [tick: u64] [delta: UTF-8 text]
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload. `epoch` is the epoch the
//! swap will publish, `tick` the feed tick the delta was applied at
//! (closure TTLs are journaled as **absolute** expiry ticks via
//! [`crate::TrafficDelta::to_journal_form`], so replay after downtime
//! can never resurrect an expired closure). A record is written with one
//! `write(2)`, then fsynced per [`FsyncPolicy`].
//!
//! ## Reading and failure classification
//!
//! [`read_journal`] walks the file and classifies what it finds:
//!
//! * a **torn tail** — the final record is incomplete (partial header,
//!   payload shorter than its length prefix, or a checksum mismatch on
//!   the very last record): the valid prefix is kept, the tail is meant
//!   to be truncated away and counted. This is the expected shape of a
//!   crash mid-`write`.
//! * **corruption** — a checksum or framing violation *before* the last
//!   record (a flipped bit, an overwritten region): the file as a whole
//!   is no longer trustworthy (length-prefixed streams cannot resync),
//!   so recovery quarantines it instead of guessing.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// File name of the write-ahead journal inside a state directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// Upper bound on one record's payload; anything larger is framing
/// corruption (the HTTP layer caps delta bodies far below this).
pub const MAX_RECORD_BYTES: u32 = 4 << 20;

/// Payload bytes before the delta text (epoch + tick).
const PAYLOAD_HEADER: usize = 16;
/// Record header bytes (length prefix + CRC).
const RECORD_HEADER: usize = 8;

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `data` (the checksum in every journal record and
/// snapshot header).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// When the journal calls `fsync` after an append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: a crash loses nothing that was
    /// acknowledged. The default; the right choice everywhere except
    /// benchmarks.
    Always,
    /// `fsync` every N records: bounded loss window, amortized cost.
    Interval(u64),
    /// Never `fsync` explicitly (the OS flushes on its own schedule):
    /// fastest, loses up to the page-cache window on power failure.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag grammar: `always`, `never`, `interval`
    /// (every 8 records) or `interval:<n>`.
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(8)),
            other => match other.strip_prefix("interval:") {
                Some(n) => {
                    let n: u64 = n.parse().map_err(|_| format!("bad fsync interval {n:?}"))?;
                    if n == 0 {
                        return Err("fsync interval must be >= 1 (use `always`)".to_string());
                    }
                    Ok(FsyncPolicy::Interval(n))
                }
                None => Err(format!(
                    "bad fsync policy {other:?} (expected always | interval[:n] | never)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(n) => write!(f, "interval:{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// One decoded journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// The epoch the swap published (replay republishes it verbatim).
    pub epoch: u64,
    /// The feed tick the delta was applied at.
    pub tick: u64,
    /// The delta in journal form (closure TTLs already absolute).
    pub delta: String,
}

/// Receipt for one append: how many bytes landed and whether they were
/// fsynced before returning.
#[derive(Clone, Copy, Debug)]
pub struct AppendReceipt {
    /// Bytes written (header + payload).
    pub bytes: u64,
    /// Whether this append fsynced per the policy.
    pub synced: bool,
}

/// Encodes one record (header + payload) into its on-disk bytes.
pub fn encode_record(epoch: u64, tick: u64, delta: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(PAYLOAD_HEADER + delta.len());
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload.extend_from_slice(&tick.to_le_bytes());
    payload.extend_from_slice(delta.as_bytes());
    let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// The append-side handle to a journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    fsync: FsyncPolicy,
    appends_since_sync: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    pub fn open(path: impl Into<PathBuf>, fsync: FsyncPolicy) -> std::io::Result<Journal> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            file,
            path,
            fsync,
            appends_since_sync: 0,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and applies the fsync policy. Called **before**
    /// the epoch swap publishes; an error here must abort the swap.
    pub fn append(&mut self, epoch: u64, tick: u64, delta: &str) -> std::io::Result<AppendReceipt> {
        let record = encode_record(epoch, tick, delta);
        self.file.write_all(&record)?;
        self.appends_since_sync += 1;
        let synced = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(n) => self.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if synced {
            self.file.sync_data()?;
            self.appends_since_sync = 0;
        }
        Ok(AppendReceipt {
            bytes: record.len() as u64,
            synced,
        })
    }

    /// Forces an fsync regardless of policy.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Truncates the journal to empty — called right after a snapshot
    /// checkpoint installs, because every journaled record is then
    /// covered by the snapshot.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }
}

/// What [`read_journal`] found.
#[derive(Clone, Debug, Default)]
pub struct JournalReadOutcome {
    /// The valid record prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// A torn/truncated tail record was detected (and must be truncated
    /// away before re-opening for append).
    pub torn_tail: bool,
    /// Corruption *before* the final record: the file cannot be trusted
    /// and must be quarantined; `records` should not be replayed.
    pub corrupt: bool,
    /// Byte length of the valid prefix (truncate the file to this on a
    /// torn tail).
    pub valid_len: u64,
}

/// Reads and classifies a journal file; see the module docs for the
/// torn-tail vs. corruption rules. A missing file reads as empty.
pub fn read_journal(path: &Path) -> std::io::Result<JournalReadOutcome> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(JournalReadOutcome::default())
        }
        Err(e) => return Err(e),
    }
    let mut outcome = JournalReadOutcome::default();
    let mut off = 0usize;
    while off < buf.len() {
        let remaining = buf.len() - off;
        if remaining < RECORD_HEADER {
            outcome.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("4 bytes"));
        let body_available = remaining - RECORD_HEADER;
        if len > MAX_RECORD_BYTES as usize || len < PAYLOAD_HEADER {
            // An impossible length prefix. If the claimed payload would
            // run past EOF this is indistinguishable from a torn write;
            // otherwise a full (absurd) record sits mid-file: corruption.
            if len > body_available {
                outcome.torn_tail = true;
            } else {
                outcome.corrupt = true;
            }
            break;
        }
        if len > body_available {
            outcome.torn_tail = true;
            break;
        }
        let payload = &buf[off + RECORD_HEADER..off + RECORD_HEADER + len];
        let at_eof = off + RECORD_HEADER + len == buf.len();
        if crc32(payload) != crc {
            // A bad checksum on the very last record is the torn-write
            // shape; anywhere earlier the file is corrupt.
            if at_eof {
                outcome.torn_tail = true;
            } else {
                outcome.corrupt = true;
            }
            break;
        }
        let epoch = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
        let tick = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        let delta = match std::str::from_utf8(&payload[PAYLOAD_HEADER..]) {
            Ok(s) => s.to_string(),
            Err(_) => {
                // CRC-valid but not UTF-8: a writer bug or a checksum
                // collision — either way, not trustworthy.
                outcome.corrupt = true;
                break;
            }
        };
        outcome.records.push(JournalRecord { epoch, tick, delta });
        off += RECORD_HEADER + len;
        outcome.valid_len = off as u64;
    }
    if outcome.corrupt {
        // Quarantine semantics: a corrupt file's prefix is not replayed.
        outcome.records.clear();
        outcome.valid_len = 0;
    }
    Ok(outcome)
}

/// Truncates a journal to its valid prefix (after a torn tail).
pub fn truncate_journal(path: &Path, valid_len: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("arp_journal_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(JOURNAL_FILE)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = temp_path("roundtrip");
        let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
        j.append(1, 0, "close:3@@5; cat:primary*1.5").unwrap();
        j.append(2, 1, "").unwrap();
        j.append(3, 2, "edge:7*2.0").unwrap();
        let out = read_journal(&path).unwrap();
        assert!(!out.torn_tail && !out.corrupt);
        assert_eq!(out.records.len(), 3);
        assert_eq!(
            out.records[0],
            JournalRecord {
                epoch: 1,
                tick: 0,
                delta: "close:3@@5; cat:primary*1.5".to_string()
            }
        );
        assert_eq!(out.records[1].delta, "");
        assert_eq!(out.records[2].epoch, 3);
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let path = temp_path("torn");
        let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
        j.append(1, 0, "close:1").unwrap();
        j.append(2, 0, "close:2").unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        // Chop into the middle of the second record.
        truncate_journal(&path, full - 3).unwrap();
        let out = read_journal(&path).unwrap();
        assert!(out.torn_tail && !out.corrupt);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].epoch, 1);
        // Truncating to the valid prefix then re-reading is clean.
        truncate_journal(&path, out.valid_len).unwrap();
        let again = read_journal(&path).unwrap();
        assert!(!again.torn_tail);
        assert_eq!(again.records.len(), 1);
    }

    #[test]
    fn mid_file_bit_flip_is_corruption_not_a_torn_tail() {
        let path = temp_path("flip");
        let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
        j.append(1, 0, "close:1").unwrap();
        j.append(2, 0, "close:2").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit of the FIRST record.
        bytes[RECORD_HEADER + 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let out = read_journal(&path).unwrap();
        assert!(out.corrupt);
        assert!(out.records.is_empty(), "a corrupt file replays nothing");
    }

    #[test]
    fn bad_checksum_on_the_last_record_reads_as_torn() {
        let path = temp_path("lastflip");
        let mut j = Journal::open(&path, FsyncPolicy::Always).unwrap();
        j.append(1, 0, "close:1").unwrap();
        j.append(2, 0, "close:2").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let out = read_journal(&path).unwrap();
        assert!(out.torn_tail && !out.corrupt);
        assert_eq!(out.records.len(), 1);
    }

    #[test]
    fn missing_file_reads_empty_and_reset_truncates() {
        let path = temp_path("reset");
        let out = read_journal(&path).unwrap();
        assert!(out.records.is_empty() && !out.torn_tail && !out.corrupt);
        let mut j = Journal::open(&path, FsyncPolicy::Interval(2)).unwrap();
        let first = j.append(1, 0, "clear").unwrap();
        assert!(!first.synced, "interval:2 defers the first fsync");
        let second = j.append(2, 0, "clear").unwrap();
        assert!(second.synced);
        j.reset().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        j.append(3, 1, "clear").unwrap();
        let out = read_journal(&path).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].epoch, 3);
    }

    #[test]
    fn fsync_policy_grammar() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("interval"), Ok(FsyncPolicy::Interval(8)));
        assert_eq!(
            FsyncPolicy::parse("interval:32"),
            Ok(FsyncPolicy::Interval(32))
        );
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Interval(8).to_string(), "interval:8");
    }
}
