//! Traffic metric family, resolved once and updated on every epoch swap.

use arp_obs::{Gauge, Registry};

/// Pre-resolved instruments of the `arp_traffic_*` family.
///
/// The `Default` bundle is detached (every update is a no-op), so a
/// [`crate::TrafficState`] without a registry costs nothing.
#[derive(Clone, Debug, Default)]
pub struct TrafficMetrics {
    /// `arp_traffic_epoch` — the current graph epoch.
    pub epoch: Gauge,
    /// `arp_traffic_deltas_applied_total` — delta statements applied.
    pub deltas_applied: arp_obs::Counter,
    /// `arp_traffic_closures_active` — currently closed edges.
    pub closures_active: Gauge,
}

impl TrafficMetrics {
    /// Resolves the family against `registry`.
    pub fn new(registry: &Registry) -> TrafficMetrics {
        TrafficMetrics {
            epoch: registry.gauge(
                "arp_traffic_epoch",
                "Current live-traffic graph epoch (0 = base weights)",
                &[],
            ),
            deltas_applied: registry.counter(
                "arp_traffic_deltas_applied_total",
                "Traffic delta statements applied across all epochs",
                &[],
            ),
            closures_active: registry.gauge(
                "arp_traffic_closures_active",
                "Edges currently closed by live-traffic incidents",
                &[],
            ),
        }
    }
}
