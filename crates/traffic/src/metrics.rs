//! Traffic metric family, resolved once and updated on every epoch swap.

use arp_obs::{Counter, Gauge, Registry};

/// Pre-resolved instruments of the `arp_traffic_*` family.
///
/// The `Default` bundle is detached (every update is a no-op), so a
/// [`crate::TrafficState`] without a registry costs nothing.
#[derive(Clone, Debug, Default)]
pub struct TrafficMetrics {
    /// `arp_traffic_epoch` — the current graph epoch.
    pub epoch: Gauge,
    /// `arp_traffic_deltas_applied_total` — delta statements applied.
    pub deltas_applied: arp_obs::Counter,
    /// `arp_traffic_closures_active` — currently closed edges.
    pub closures_active: Gauge,
}

impl TrafficMetrics {
    /// Resolves the family against `registry`.
    pub fn new(registry: &Registry) -> TrafficMetrics {
        TrafficMetrics {
            epoch: registry.gauge(
                "arp_traffic_epoch",
                "Current live-traffic graph epoch (0 = base weights)",
                &[],
            ),
            deltas_applied: registry.counter(
                "arp_traffic_deltas_applied_total",
                "Traffic delta statements applied across all epochs",
                &[],
            ),
            closures_active: registry.gauge(
                "arp_traffic_closures_active",
                "Edges currently closed by live-traffic incidents",
                &[],
            ),
        }
    }
}

/// Pre-resolved instruments of the durability layer: journal appends,
/// snapshot checkpoints, and startup recovery.
///
/// Like [`TrafficMetrics`], the `Default` bundle is detached, so durable
/// state without a registry (unit tests, the bench harness's reference
/// runs) records nothing.
#[derive(Clone, Debug, Default)]
pub struct DurabilityMetrics {
    /// `arp_journal_records_total` — records appended to the WAL.
    pub journal_records: Counter,
    /// `arp_journal_bytes_total` — bytes appended to the WAL.
    pub journal_bytes: Counter,
    /// `arp_journal_fsyncs_total` — fsyncs issued by the WAL.
    pub journal_fsyncs: Counter,
    /// `arp_journal_torn_tails_total` — torn tail records truncated away
    /// during recovery.
    pub journal_torn_tails: Counter,
    /// `arp_journal_quarantines_total` — journal or snapshot files
    /// quarantined as corrupt.
    pub journal_quarantines: Counter,
    /// `arp_snapshot_writes_total` — snapshot checkpoints installed.
    pub snapshot_writes: Counter,
    /// `arp_snapshot_prunes_total` — old snapshot files pruned.
    pub snapshot_prunes: Counter,
    /// `arp_recovery_replayed_records` — journal records replayed by the
    /// most recent startup recovery.
    pub recovery_replayed: Gauge,
    /// `arp_recovery_ms` — wall-clock milliseconds the most recent
    /// startup recovery took.
    pub recovery_ms: Gauge,
}

impl DurabilityMetrics {
    /// Resolves the family against `registry`.
    pub fn new(registry: &Registry) -> DurabilityMetrics {
        DurabilityMetrics {
            journal_records: registry.counter(
                "arp_journal_records_total",
                "Delta records appended to the traffic write-ahead journal",
                &[],
            ),
            journal_bytes: registry.counter(
                "arp_journal_bytes_total",
                "Bytes appended to the traffic write-ahead journal",
                &[],
            ),
            journal_fsyncs: registry.counter(
                "arp_journal_fsyncs_total",
                "fsync calls issued by the traffic write-ahead journal",
                &[],
            ),
            journal_torn_tails: registry.counter(
                "arp_journal_torn_tails_total",
                "Torn journal tail records truncated away during recovery",
                &[],
            ),
            journal_quarantines: registry.counter(
                "arp_journal_quarantines_total",
                "Corrupt journal/snapshot files quarantined instead of replayed",
                &[],
            ),
            snapshot_writes: registry.counter(
                "arp_snapshot_writes_total",
                "Traffic state snapshot checkpoints installed",
                &[],
            ),
            snapshot_prunes: registry.counter(
                "arp_snapshot_prunes_total",
                "Old traffic snapshot files pruned by retention",
                &[],
            ),
            recovery_replayed: registry.gauge(
                "arp_recovery_replayed_records",
                "Journal records replayed by the most recent startup recovery",
                &[],
            ),
            recovery_ms: registry.gauge(
                "arp_recovery_ms",
                "Wall-clock milliseconds the most recent startup recovery took",
                &[],
            ),
        }
    }
}
