//! Startup recovery: rebuild a [`crate::TrafficState`] from a state
//! directory so a restarted process is **epoch-for-epoch identical** to
//! the process that never crashed.
//!
//! ## The replay invariant
//!
//! Recovery loads the newest valid snapshot, then replays the journal
//! suffix (records with `epoch > snapshot.epoch`) through the *same*
//! code path live ingestion uses: when a record's tick is ahead of the
//! current tick, TTL closures are expired first (exactly what
//! `advance_tick` does), then the record's delta is applied at the
//! record's tick. Because journaled deltas carry **absolute** closure
//! expiries, replay is insensitive to how long the process was down.
//! Each replayed record republishes its journaled epoch number verbatim.
//!
//! ## Failure ladder
//!
//! Recovery never refuses to start:
//!
//! 1. **Torn tail** — the journal's last record is incomplete (a crash
//!    mid-write): truncate it away, count it, replay the valid prefix.
//! 2. **Corrupt journal** (mid-file checksum/framing violation, or a
//!    record whose delta no longer validates): quarantine the whole file
//!    (`journal.wal.quarantine`) and serve from the snapshot (or base
//!    weights) — verdict `degraded`.
//! 3. **Corrupt snapshot**: quarantine it and fall back to the
//!    next-oldest; if none survive, base weights — verdict `degraded`.
//!
//! The verdict is surfaced in the `/api/health` `recovery` block.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

use arp_roadnet::csr::RoadNetwork;

use crate::delta::TrafficDelta;
use crate::error::TrafficError;
use crate::journal::{read_journal, truncate_journal, FsyncPolicy, Journal, JOURNAL_FILE};
use crate::metrics::DurabilityMetrics;
use crate::overlay::TrafficOverlay;
use crate::snapshot::{SnapshotStore, StateSnapshot};

/// Configuration of the durability layer (the `--state-dir`, `--fsync`
/// and `--snapshot-every` serve flags).
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// The state directory (journal + snapshots). Created if absent.
    pub dir: PathBuf,
    /// When journal appends fsync. Default: [`FsyncPolicy::Always`].
    pub fsync: FsyncPolicy,
    /// Install a snapshot checkpoint (and truncate the journal) every N
    /// journaled records; `0` disables periodic checkpoints. Default: 32.
    pub snapshot_every: u64,
    /// How many snapshot files to keep after each install. Default: 3.
    pub retain_snapshots: usize,
}

impl DurabilityConfig {
    /// Defaults (fsync `always`, checkpoint every 32 records, retain 3
    /// snapshots) over `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 32,
            retain_snapshots: 3,
        }
    }
}

/// The verdict of a startup recovery, surfaced by `/api/health`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryStatus {
    /// Nothing to repair: empty state dir, or a snapshot with no journal
    /// suffix behind it.
    Clean,
    /// State was rebuilt from snapshot + journal replay (a torn tail may
    /// have been truncated away); the rebuilt state is exact.
    Replayed,
    /// A corrupt journal or snapshot was quarantined: the process serves
    /// the newest state that could be proven intact (possibly base
    /// weights). Operator attention required — see OPERATIONS.md.
    Degraded,
}

impl RecoveryStatus {
    /// The lower-case verdict string used in `/api/health` and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryStatus::Clean => "clean",
            RecoveryStatus::Replayed => "replayed",
            RecoveryStatus::Degraded => "degraded",
        }
    }
}

/// What a startup recovery found and did.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// The overall verdict.
    pub status: RecoveryStatus,
    /// Epoch of the snapshot recovery started from (`None` = none found,
    /// started from base weights).
    pub snapshot_epoch: Option<u64>,
    /// Journal records replayed on top of the snapshot.
    pub replayed_records: usize,
    /// Torn tail records truncated away (0 or 1 per recovery).
    pub torn_tails: usize,
    /// File names quarantined as corrupt (renamed to `*.quarantine`).
    pub quarantined: Vec<String>,
    /// The epoch the recovered state serves.
    pub epoch: u64,
    /// The feed tick the recovered state resumes at.
    pub tick: u64,
    /// Wall-clock duration of the recovery.
    pub duration_ms: u64,
}

/// Injectable failure hook fired before every journal append (the
/// `journal.append` failpoint site). `arp-traffic` has no dependency on
/// the serving tier's `FaultPlan`, so the demo layer installs a closure.
pub type JournalFaultHook = Box<dyn Fn() -> Result<(), String> + Send + Sync>;

/// The attached durability machinery of a recovered [`crate::TrafficState`]:
/// the open journal, the snapshot store, and the checkpoint cadence.
pub(crate) struct Durability {
    journal: Mutex<Journal>,
    store: SnapshotStore,
    snapshot_every: u64,
    records_since_checkpoint: AtomicU64,
    fault_hook: RwLock<Option<JournalFaultHook>>,
    metrics: DurabilityMetrics,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("dir", &self.store.dir())
            .field("snapshot_every", &self.snapshot_every)
            .finish_non_exhaustive()
    }
}

impl Durability {
    /// Appends one record to the journal (firing the failpoint hook
    /// first). Called **before** the epoch swap publishes; an error here
    /// must abort the swap, so the caller translates it into
    /// [`TrafficError::Journal`] and leaves state untouched.
    pub(crate) fn append(&self, epoch: u64, tick: u64, delta: &str) -> Result<(), TrafficError> {
        if let Some(hook) = self.fault_hook.read().expect("fault hook lock").as_ref() {
            hook().map_err(|reason| TrafficError::Journal { reason })?;
        }
        let receipt = self
            .journal
            .lock()
            .expect("journal lock")
            .append(epoch, tick, delta)
            .map_err(|e| TrafficError::Journal {
                reason: e.to_string(),
            })?;
        self.metrics.journal_records.inc();
        self.metrics.journal_bytes.add(receipt.bytes);
        if receipt.synced {
            self.metrics.journal_fsyncs.inc();
        }
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// True once enough records accumulated to warrant a checkpoint.
    pub(crate) fn should_checkpoint(&self) -> bool {
        self.snapshot_every > 0
            && self.records_since_checkpoint.load(Ordering::Relaxed) >= self.snapshot_every
    }

    /// Installs a snapshot checkpoint and truncates the journal (every
    /// journaled record is now covered by the snapshot).
    pub(crate) fn checkpoint(&self, snap: &StateSnapshot) -> Result<(), TrafficError> {
        let (_, pruned) = self.store.write(snap).map_err(|e| TrafficError::Journal {
            reason: format!("snapshot write failed: {e}"),
        })?;
        self.metrics.snapshot_writes.inc();
        self.metrics.snapshot_prunes.add(pruned as u64);
        self.journal
            .lock()
            .expect("journal lock")
            .reset()
            .map_err(|e| TrafficError::Journal {
                reason: format!("journal reset failed: {e}"),
            })?;
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Installs (or clears) the `journal.append` failpoint hook.
    pub(crate) fn set_fault_hook(&self, hook: Option<JournalFaultHook>) {
        *self.fault_hook.write().expect("fault hook lock") = hook;
    }
}

/// The rebuilt state [`recover`] hands back to `TrafficState`.
pub(crate) struct RecoveredState {
    pub(crate) overlay: TrafficOverlay,
    pub(crate) tick: u64,
    pub(crate) epoch: u64,
    pub(crate) durability: Durability,
    pub(crate) report: RecoveryReport,
}

fn journal_err(e: std::io::Error) -> TrafficError {
    TrafficError::Journal {
        reason: e.to_string(),
    }
}

/// True if every edge the overlay references exists in `net` — the
/// edge-range validation snapshot decoding defers until a network is at
/// hand.
fn overlay_in_range(overlay: &TrafficOverlay, net: &RoadNetwork) -> bool {
    let in_range = |edge: u32| (edge as usize) < net.num_edges();
    overlay
        .edge_factor_entries()
        .iter()
        .all(|&(edge, _)| in_range(edge))
        && overlay
            .closure_entries()
            .iter()
            .all(|&(edge, _)| in_range(edge))
}

/// Renames a corrupt journal aside (best-effort) and records the name.
fn quarantine_journal(path: &Path, quarantined: &mut Vec<String>) {
    let target = path.with_extension("wal.quarantine");
    let _ = fs::remove_file(&target);
    if fs::rename(path, &target).is_ok() {
        quarantined.push(JOURNAL_FILE.to_string());
    }
}

/// Rebuilds the traffic state from `config.dir` per the module-level
/// failure ladder. Errors only on unrecoverable I/O (the directory or
/// journal cannot be created/opened at all) — data corruption degrades,
/// it never errors.
pub(crate) fn recover(
    net: &RoadNetwork,
    config: &DurabilityConfig,
    metrics: DurabilityMetrics,
) -> Result<RecoveredState, TrafficError> {
    let start = Instant::now();
    fs::create_dir_all(&config.dir).map_err(journal_err)?;
    let store = SnapshotStore::new(&config.dir, config.retain_snapshots);
    let mut quarantined: Vec<String> = Vec::new();

    // Newest snapshot that both decodes AND references only edges this
    // network has; anything that fails either check is quarantined.
    let mut loaded: Option<StateSnapshot> = None;
    loop {
        let (candidate, bad) = store.load_newest();
        quarantined.extend(bad);
        match candidate {
            Some((snap, path)) => {
                if overlay_in_range(&snap.overlay, net) {
                    loaded = Some(snap);
                    break;
                }
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let _ = fs::rename(&path, path.with_extension("arps.quarantine"));
                quarantined.push(name);
            }
            None => break,
        }
    }
    let snapshot_epoch = loaded.as_ref().map(|s| s.epoch);
    let (mut overlay, mut tick, mut epoch) = match loaded {
        Some(snap) => (snap.overlay, snap.tick, snap.epoch),
        None => (TrafficOverlay::identity(), 0, 0),
    };

    // Journal suffix: classify, then replay through the live code path.
    let journal_path = config.dir.join(JOURNAL_FILE);
    let mut torn_tails = 0usize;
    let mut replayed = 0usize;
    let mut replay_failed = false;
    let outcome = read_journal(&journal_path).map_err(journal_err)?;
    if outcome.torn_tail {
        torn_tails += 1;
        let _ = truncate_journal(&journal_path, outcome.valid_len);
    }
    let records = if outcome.corrupt {
        quarantine_journal(&journal_path, &mut quarantined);
        Vec::new()
    } else {
        outcome.records
    };
    if !records.is_empty() {
        let pre_replay = (overlay.clone(), tick, epoch);
        for rec in &records {
            // Records at or below the snapshot's epoch are already folded
            // into it (epochs are monotone within one journal generation;
            // checkpoints truncate the journal long before wraparound).
            if let Some(snap_epoch) = snapshot_epoch {
                if rec.epoch <= snap_epoch {
                    continue;
                }
            }
            let delta = match TrafficDelta::parse(&rec.delta) {
                Ok(delta) => delta,
                Err(_) => {
                    replay_failed = true;
                    break;
                }
            };
            // Mirror advance_tick: entering a later tick expires TTL
            // closures before the tick's delta applies. Journaled expiry
            // ticks are absolute, so downtime cannot resurrect closures.
            if rec.tick > tick {
                tick = rec.tick;
                overlay.expire(tick);
            }
            match overlay.apply(net, &delta, rec.tick) {
                Ok(_) => {
                    epoch = rec.epoch;
                    replayed += 1;
                }
                Err(_) => {
                    replay_failed = true;
                    break;
                }
            }
        }
        if replay_failed {
            // A CRC-valid record that fails re-validation means the
            // journal lies about what the live process accepted: do not
            // trust any of it.
            (overlay, tick, epoch) = pre_replay;
            replayed = 0;
            quarantine_journal(&journal_path, &mut quarantined);
        }
    }

    metrics.journal_torn_tails.add(torn_tails as u64);
    metrics.journal_quarantines.add(quarantined.len() as u64);
    metrics.recovery_replayed.set(replayed as i64);

    let journal = Journal::open(&journal_path, config.fsync).map_err(journal_err)?;
    let durability = Durability {
        journal: Mutex::new(journal),
        store,
        snapshot_every: config.snapshot_every,
        records_since_checkpoint: AtomicU64::new(0),
        fault_hook: RwLock::new(None),
        metrics,
    };
    // Fold whatever recovery established into a fresh checkpoint so the
    // next restart starts clean (best-effort: a failure here just means
    // the next recovery re-replays).
    if replayed > 0 || torn_tails > 0 || !quarantined.is_empty() {
        let _ = durability.checkpoint(&StateSnapshot {
            epoch,
            tick,
            overlay: overlay.clone(),
        });
    }
    let duration_ms = start.elapsed().as_millis() as u64;
    durability.metrics.recovery_ms.set(duration_ms as i64);
    let status = if !quarantined.is_empty() {
        RecoveryStatus::Degraded
    } else if replayed > 0 || torn_tails > 0 {
        RecoveryStatus::Replayed
    } else {
        RecoveryStatus::Clean
    };
    let report = RecoveryReport {
        status,
        snapshot_epoch,
        replayed_records: replayed,
        torn_tails,
        quarantined,
        epoch,
        tick,
        duration_ms,
    };
    Ok(RecoveredState {
        overlay,
        tick,
        epoch,
        durability,
        report,
    })
}
