//! [`TrafficOverlay`]: the accumulated live-traffic state — per-category
//! and per-edge slow-down factors plus incident closures — and its
//! materialization into an effective weight column.
//!
//! The overlay is **copy-on-write at the column level**: applying a delta
//! clones the (small) overlay, mutates the clone, and materializes one
//! fresh `Vec<Weight>` for the new epoch; in-flight readers keep the
//! previous epoch's column untouched. An identity overlay materializes to
//! the base column itself (shared, not copied), so serving with no
//! traffic active costs zero extra memory and produces byte-identical
//! results by construction.

use std::collections::BTreeMap;
use std::sync::Arc;

use arp_roadnet::category::{RoadCategory, ALL_CATEGORIES};
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::weight::{scale_weight, Weight, CLOSED};

use crate::delta::{TrafficDelta, TrafficOp};
use crate::error::TrafficError;

/// Number of road categories (the size of the per-category factor table).
const NUM_CATEGORIES: usize = ALL_CATEGORIES.len();

/// Accumulated live-traffic state over one road network.
///
/// Factors compose multiplicatively per edge: `category_factor ×
/// edge_factor`, both defaulting to 1.0. Closures override factors
/// entirely ([`CLOSED`] wins). All mutation goes through
/// [`TrafficOverlay::apply`], which validates against the network before
/// touching anything, so an overlay is never half-updated.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficOverlay {
    /// Slow-down per road category, indexed by [`RoadCategory::code`].
    category_factors: [f64; NUM_CATEGORIES],
    /// Per-edge slow-down, keyed by edge id. `BTreeMap` keeps iteration
    /// (and thus materialization and reporting) deterministic.
    edge_factors: BTreeMap<u32, f64>,
    /// Closed edges → expiry tick (`None` = until explicitly reopened).
    closures: BTreeMap<u32, Option<u64>>,
}

impl Default for TrafficOverlay {
    fn default() -> Self {
        TrafficOverlay::identity()
    }
}

impl TrafficOverlay {
    /// The identity overlay: every factor 1.0, no closures.
    pub fn identity() -> TrafficOverlay {
        TrafficOverlay {
            category_factors: [1.0; NUM_CATEGORIES],
            edge_factors: BTreeMap::new(),
            closures: BTreeMap::new(),
        }
    }

    /// True if materializing would reproduce the base column exactly.
    pub fn is_identity(&self) -> bool {
        self.closures.is_empty()
            && self.edge_factors.is_empty()
            && self.category_factors.iter().all(|&f| f == 1.0)
    }

    /// Number of active incident closures.
    pub fn num_closures(&self) -> usize {
        self.closures.len()
    }

    /// Number of per-edge factor overrides.
    pub fn num_edge_factors(&self) -> usize {
        self.edge_factors.len()
    }

    /// Number of road categories with a non-1.0 factor.
    pub fn num_category_factors(&self) -> usize {
        self.category_factors.iter().filter(|&&f| f != 1.0).count()
    }

    /// Total number of overlay entries (the "overlay size" that
    /// `/api/health` reports).
    pub fn size(&self) -> usize {
        self.num_closures() + self.num_edge_factors() + self.num_category_factors()
    }

    /// True if `edge` is currently closed.
    pub fn is_closed(&self, edge: u32) -> bool {
        self.closures.contains_key(&edge)
    }

    /// The non-1.0 category factors as `(code, factor)` pairs, in code
    /// order — the snapshot encoder's view of the factor table.
    pub fn category_factor_entries(&self) -> Vec<(u8, f64)> {
        self.category_factors
            .iter()
            .enumerate()
            .filter(|(_, &f)| f != 1.0)
            .map(|(code, &f)| (code as u8, f))
            .collect()
    }

    /// The per-edge factors as `(edge, factor)` pairs, in edge order.
    pub fn edge_factor_entries(&self) -> Vec<(u32, f64)> {
        self.edge_factors.iter().map(|(&e, &f)| (e, f)).collect()
    }

    /// The closures as `(edge, expiry)` pairs (`None` = until reopened),
    /// in edge order. Expiries are **absolute** ticks.
    pub fn closure_entries(&self) -> Vec<(u32, Option<u64>)> {
        self.closures.iter().map(|(&e, &x)| (e, x)).collect()
    }

    /// Rebuilds an overlay from entry lists (the snapshot decoder's
    /// inverse of the `*_entries` accessors). Returns `None` if any
    /// entry is invalid — an unknown category code, or a factor that is
    /// non-finite or below 1.0 — so a corrupted-but-checksum-colliding
    /// snapshot can never smuggle in state that `apply` would have
    /// rejected. Edge-range validation needs a network and happens at
    /// recovery time.
    pub fn from_parts(
        categories: &[(u8, f64)],
        edges: &[(u32, f64)],
        closures: &[(u32, Option<u64>)],
    ) -> Option<TrafficOverlay> {
        let valid_factor = |f: f64| f.is_finite() && f >= 1.0;
        let mut overlay = TrafficOverlay::identity();
        for &(code, factor) in categories {
            if RoadCategory::from_code(code).is_none() || !valid_factor(factor) {
                return None;
            }
            overlay.category_factors[code as usize] = factor;
        }
        for &(edge, factor) in edges {
            if !valid_factor(factor) || factor == 1.0 {
                return None;
            }
            overlay.edge_factors.insert(edge, factor);
        }
        for &(edge, expiry) in closures {
            overlay.closures.insert(edge, expiry);
        }
        Some(overlay)
    }

    /// Validates every statement of `delta` against `net` **before**
    /// applying any of them, then applies all in order. `now` is the
    /// current feed tick; `close:<id>@<ttl>` closures expire at
    /// `now + ttl` (see [`TrafficOverlay::expire`]).
    ///
    /// Returns the number of statements applied.
    pub fn apply(
        &mut self,
        net: &RoadNetwork,
        delta: &TrafficDelta,
        now: u64,
    ) -> Result<usize, TrafficError> {
        for op in &delta.ops {
            self.validate(net, op)?;
        }
        for op in &delta.ops {
            self.apply_op(op, now);
        }
        Ok(delta.ops.len())
    }

    fn validate(&self, net: &RoadNetwork, op: &TrafficOp) -> Result<(), TrafficError> {
        let check_edge = |edge: u32| -> Result<(), TrafficError> {
            if (edge as usize) < net.num_edges() {
                Ok(())
            } else {
                Err(TrafficError::EdgeOutOfRange {
                    edge,
                    num_edges: net.num_edges(),
                })
            }
        };
        let check_factor = |factor: f64| -> Result<(), TrafficError> {
            if !factor.is_finite() {
                Err(TrafficError::FactorNotFinite)
            } else if factor < 1.0 {
                Err(TrafficError::FactorBelowOne { factor })
            } else {
                Ok(())
            }
        };
        match op {
            TrafficOp::EdgeFactor { edge, factor } => {
                check_edge(*edge)?;
                check_factor(*factor)
            }
            TrafficOp::CategoryFactor { category, factor } => {
                if RoadCategory::from_code(*category).is_none() {
                    return Err(TrafficError::UnknownCategory {
                        tag: format!("code {category}"),
                    });
                }
                check_factor(*factor)
            }
            TrafficOp::Close { edge, .. }
            | TrafficOp::CloseAt { edge, .. }
            | TrafficOp::Reopen { edge } => check_edge(*edge),
            TrafficOp::Clear => Ok(()),
        }
    }

    fn apply_op(&mut self, op: &TrafficOp, now: u64) {
        match op {
            TrafficOp::EdgeFactor { edge, factor } => {
                if *factor == 1.0 {
                    self.edge_factors.remove(edge);
                } else {
                    self.edge_factors.insert(*edge, *factor);
                }
            }
            TrafficOp::CategoryFactor { category, factor } => {
                self.category_factors[*category as usize] = *factor;
            }
            TrafficOp::Close { edge, ttl } => {
                let expiry = ttl.map(|t| now.saturating_add(t as u64));
                self.closures.insert(*edge, expiry);
            }
            TrafficOp::CloseAt { edge, expiry } => {
                // The absolute form carries its expiry verbatim — `now`
                // plays no part, which is exactly why journal replay
                // after downtime cannot resurrect expired closures.
                self.closures.insert(*edge, Some(*expiry));
            }
            TrafficOp::Reopen { edge } => {
                self.closures.remove(edge);
            }
            TrafficOp::Clear => *self = TrafficOverlay::identity(),
        }
    }

    /// Removes closures whose expiry tick is `<= now`. Returns how many
    /// expired. Factors never expire (the feed replaces them each tick).
    pub fn expire(&mut self, now: u64) -> usize {
        let before = self.closures.len();
        self.closures
            .retain(|_, expiry| expiry.map(|at| at > now).unwrap_or(true));
        before - self.closures.len()
    }

    /// Materializes the effective weight column for `base` under this
    /// overlay.
    ///
    /// The identity overlay returns `base` itself (`Arc::clone`, zero
    /// copies — the byte-identity guarantee is structural, not numeric).
    /// Otherwise a fresh column is built with [`scale_weight`] (exact
    /// identity for untouched edges, saturating and sentinel-preserving
    /// for the rest) and [`CLOSED`] stamped over closed edges.
    pub fn materialize(&self, net: &RoadNetwork, base: &Arc<Vec<Weight>>) -> Arc<Vec<Weight>> {
        debug_assert_eq!(base.len(), net.num_edges());
        if self.is_identity() {
            return Arc::clone(base);
        }
        let mut column: Vec<Weight> = Vec::with_capacity(base.len());
        for (i, &w) in base.iter().enumerate() {
            let cat = net.category(arp_roadnet::EdgeId(i as u32)).code() as usize;
            let mut factor = self.category_factors[cat];
            if let Some(f) = self.edge_factors.get(&(i as u32)) {
                factor *= f;
            }
            column.push(if factor == 1.0 {
                w
            } else {
                scale_weight(w, factor)
            });
        }
        for &edge in self.closures.keys() {
            column[edge as usize] = CLOSED;
        }
        Arc::new(column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::geo::Point;

    fn line(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_node(Point::new(i as f64 * 0.01, 0.0)))
            .collect();
        for i in 0..n - 1 {
            b.add_bidirectional(
                ids[i],
                ids[i + 1],
                EdgeSpec::category(RoadCategory::Primary),
            );
        }
        b.build()
    }

    fn base_of(net: &RoadNetwork) -> Arc<Vec<Weight>> {
        Arc::new(net.weights().to_vec())
    }

    #[test]
    fn identity_overlay_shares_the_base_column() {
        let net = line(4);
        let base = base_of(&net);
        let overlay = TrafficOverlay::identity();
        assert!(overlay.is_identity());
        assert_eq!(overlay.size(), 0);
        let column = overlay.materialize(&net, &base);
        assert!(Arc::ptr_eq(&column, &base), "identity must not copy");
    }

    #[test]
    fn factors_compose_and_closures_win() {
        let net = line(4);
        let base = base_of(&net);
        let mut overlay = TrafficOverlay::identity();
        let delta = TrafficDelta::parse("cat:primary*2.0; edge:0*1.5; close:1").unwrap();
        assert_eq!(overlay.apply(&net, &delta, 0).unwrap(), 3);
        let column = overlay.materialize(&net, &base);
        // Edge 0: category 2.0 × edge 1.5 = 3.0.
        assert_eq!(column[0], scale_weight(base[0], 3.0));
        // Edge 1: closed, regardless of its category factor.
        assert_eq!(column[1], CLOSED);
        // Other primaries: category factor only.
        assert_eq!(column[2], scale_weight(base[2], 2.0));
        assert_eq!(overlay.size(), 3);
    }

    #[test]
    fn validation_rejects_without_partial_application() {
        let net = line(3);
        let mut overlay = TrafficOverlay::identity();
        // Second statement is out of range: nothing may apply.
        let delta = TrafficDelta::parse("edge:0*2.0; close:999").unwrap();
        assert!(matches!(
            overlay.apply(&net, &delta, 0),
            Err(TrafficError::EdgeOutOfRange { .. })
        ));
        assert!(overlay.is_identity(), "failed delta must not half-apply");
    }

    #[test]
    fn ttl_expiry_restores_the_base_weight_exactly() {
        let net = line(4);
        let base = base_of(&net);
        let mut overlay = TrafficOverlay::identity();
        overlay
            .apply(&net, &TrafficDelta::parse("close:2@3").unwrap(), 10)
            .unwrap();
        assert!(overlay.is_closed(2));
        assert_eq!(overlay.expire(12), 0, "not yet: expires at 13");
        assert!(overlay.is_closed(2));
        assert_eq!(overlay.expire(13), 1);
        assert!(!overlay.is_closed(2));
        // Back to identity: the materialized column IS the base again.
        assert!(overlay.is_identity());
        assert!(Arc::ptr_eq(&overlay.materialize(&net, &base), &base));
    }

    #[test]
    fn untimed_closures_survive_expiry_until_reopened() {
        let net = line(4);
        let mut overlay = TrafficOverlay::identity();
        overlay
            .apply(&net, &TrafficDelta::parse("close:1").unwrap(), 0)
            .unwrap();
        assert_eq!(overlay.expire(u64::MAX), 0);
        assert!(overlay.is_closed(1));
        overlay
            .apply(&net, &TrafficDelta::parse("reopen:1").unwrap(), 0)
            .unwrap();
        assert!(!overlay.is_closed(1));
    }

    #[test]
    fn clear_returns_to_identity() {
        let net = line(4);
        let mut overlay = TrafficOverlay::identity();
        overlay
            .apply(
                &net,
                &TrafficDelta::parse("cat:primary*3.0; close:0; edge:1*2.0; clear").unwrap(),
                0,
            )
            .unwrap();
        assert!(overlay.is_identity());
    }

    #[test]
    fn absolute_closures_ignore_now_and_expire_at_their_tick() {
        let net = line(4);
        let mut overlay = TrafficOverlay::identity();
        // Applied at tick 10, but the expiry is absolute tick 5: the
        // closure is already stale and the next expiry sweep removes it.
        overlay
            .apply(&net, &TrafficDelta::parse("close:2@@5").unwrap(), 10)
            .unwrap();
        assert!(overlay.is_closed(2));
        assert_eq!(overlay.expire(10), 1, "expiry 5 <= now 10");
        assert!(!overlay.is_closed(2));
        // A future absolute expiry behaves exactly like close:2@<ttl>.
        overlay
            .apply(&net, &TrafficDelta::parse("close:2@@13").unwrap(), 10)
            .unwrap();
        assert_eq!(overlay.expire(12), 0);
        assert_eq!(overlay.expire(13), 1);
    }

    #[test]
    fn entries_and_from_parts_round_trip() {
        let net = line(8);
        let mut overlay = TrafficOverlay::identity();
        overlay
            .apply(
                &net,
                &TrafficDelta::parse("cat:primary*1.7; edge:2*3.0; close:4@@9; close:6").unwrap(),
                0,
            )
            .unwrap();
        let rebuilt = TrafficOverlay::from_parts(
            &overlay.category_factor_entries(),
            &overlay.edge_factor_entries(),
            &overlay.closure_entries(),
        )
        .unwrap();
        assert_eq!(rebuilt, overlay);
        assert_eq!(rebuilt.closure_entries(), vec![(4, Some(9)), (6, None)]);
    }

    #[test]
    fn from_parts_rejects_invalid_entries() {
        assert!(TrafficOverlay::from_parts(&[(200, 1.5)], &[], &[]).is_none());
        assert!(TrafficOverlay::from_parts(&[(0, 0.5)], &[], &[]).is_none());
        assert!(TrafficOverlay::from_parts(&[], &[(1, f64::NAN)], &[]).is_none());
        assert!(TrafficOverlay::from_parts(&[], &[(1, 1.0)], &[]).is_none());
        assert!(TrafficOverlay::from_parts(&[], &[(1, 2.0)], &[(3, None)]).is_some());
    }

    #[test]
    fn setting_a_factor_back_to_one_removes_the_entry() {
        let net = line(4);
        let mut overlay = TrafficOverlay::identity();
        overlay
            .apply(&net, &TrafficDelta::parse("edge:1*2.0").unwrap(), 0)
            .unwrap();
        assert_eq!(overlay.num_edge_factors(), 1);
        overlay
            .apply(
                &net,
                &TrafficDelta::parse("edge:1*1.0; cat:primary*1.0").unwrap(),
                0,
            )
            .unwrap();
        assert!(overlay.is_identity());
    }
}
