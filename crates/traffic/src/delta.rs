//! The traffic **delta grammar**: the wire format of `POST /api/traffic`
//! and the unit the feed generator emits.
//!
//! A delta is a `;`-separated list of statements:
//!
//! ```text
//! edge:<id>*<factor>      slow one edge by <factor> (≥ 1.0)
//! cat:<osm_tag>*<factor>  slow every edge of a road category
//! close:<id>              close an edge (incident, no TTL)
//! close:<id>@<ttl>        close an edge for <ttl> ticks
//! close:<id>@@<expiry>    close an edge until absolute tick <expiry>
//! reopen:<id>             lift a closure early
//! clear                   drop the whole overlay (back to base weights)
//! ```
//!
//! Example: `cat:primary*1.8; close:412@3; edge:77*2.5`.
//!
//! Statements are applied in order; later statements win. Parsing is
//! strict (an invalid statement rejects the whole delta) so a half-typo'd
//! incident never half-applies.
//!
//! The `@@` (absolute expiry) form is what the write-ahead journal
//! stores: [`TrafficDelta::to_journal_form`] rewrites relative TTLs into
//! absolute ticks at append time, so replaying a journal after downtime
//! can never resurrect a closure that expired while the process was down.

use std::fmt;

use crate::error::TrafficError;

/// One statement of the delta grammar.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficOp {
    /// `edge:<id>*<factor>` — multiply one edge's weight.
    EdgeFactor {
        /// Target edge id.
        edge: u32,
        /// Slow-down multiplier, ≥ 1.0.
        factor: f64,
    },
    /// `cat:<osm_tag>*<factor>` — multiply every edge of a category.
    CategoryFactor {
        /// Category code ([`arp_roadnet::RoadCategory::code`]).
        category: u8,
        /// Slow-down multiplier, ≥ 1.0.
        factor: f64,
    },
    /// `close:<id>[@<ttl>]` — close an edge, optionally for `ttl` ticks.
    Close {
        /// Target edge id.
        edge: u32,
        /// Remaining ticks before the closure auto-expires (`None` =
        /// until an explicit `reopen`).
        ttl: Option<u32>,
    },
    /// `close:<id>@@<expiry>` — close an edge until the **absolute**
    /// feed tick `expiry` (exclusive: the closure is gone once the tick
    /// counter reaches `expiry`). This is the journal form of a TTL'd
    /// closure; it is also accepted on the wire.
    CloseAt {
        /// Target edge id.
        edge: u32,
        /// Absolute expiry tick.
        expiry: u64,
    },
    /// `reopen:<id>` — lift a closure.
    Reopen {
        /// Target edge id.
        edge: u32,
    },
    /// `clear` — drop every factor and closure.
    Clear,
}

impl fmt::Display for TrafficOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficOp::EdgeFactor { edge, factor } => write!(f, "edge:{edge}*{factor}"),
            TrafficOp::CategoryFactor { category, factor } => {
                let tag = arp_roadnet::RoadCategory::from_code(*category)
                    .map(|c| c.osm_tag())
                    .unwrap_or("unknown");
                write!(f, "cat:{tag}*{factor}")
            }
            TrafficOp::Close { edge, ttl: None } => write!(f, "close:{edge}"),
            TrafficOp::Close {
                edge,
                ttl: Some(ttl),
            } => write!(f, "close:{edge}@{ttl}"),
            TrafficOp::CloseAt { edge, expiry } => write!(f, "close:{edge}@@{expiry}"),
            TrafficOp::Reopen { edge } => write!(f, "reopen:{edge}"),
            TrafficOp::Clear => write!(f, "clear"),
        }
    }
}

/// An ordered batch of [`TrafficOp`]s, applied atomically (one epoch
/// bump per delta, however many statements it carries).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficDelta {
    /// The statements, in application order.
    pub ops: Vec<TrafficOp>,
}

impl TrafficDelta {
    /// The empty delta (still bumps the epoch when applied — an explicit
    /// "tick with no changes" is how the feed models a quiet interval).
    pub fn empty() -> TrafficDelta {
        TrafficDelta::default()
    }

    /// True if the delta carries no statements.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The journal form of this delta, as of feed tick `now`: every
    /// relative-TTL closure (`close:<id>@<ttl>`) becomes an absolute
    /// expiry (`close:<id>@@<now+ttl>`); everything else is unchanged.
    /// This is what the write-ahead journal records, so replay applies
    /// the exact expiry the live process computed.
    pub fn to_journal_form(&self, now: u64) -> TrafficDelta {
        TrafficDelta {
            ops: self
                .ops
                .iter()
                .map(|op| match op {
                    TrafficOp::Close {
                        edge,
                        ttl: Some(ttl),
                    } => TrafficOp::CloseAt {
                        edge: *edge,
                        expiry: now.saturating_add(*ttl as u64),
                    },
                    other => other.clone(),
                })
                .collect(),
        }
    }

    /// Parses the `;`-separated grammar. Whitespace around statements and
    /// a trailing `;` are tolerated; an empty body yields the empty delta.
    pub fn parse(text: &str) -> Result<TrafficDelta, TrafficError> {
        let mut ops = Vec::new();
        for raw in text.split(';') {
            let stmt = raw.trim();
            if stmt.is_empty() {
                continue;
            }
            ops.push(parse_statement(stmt)?);
        }
        Ok(TrafficDelta { ops })
    }
}

impl fmt::Display for TrafficDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

fn parse_factor(stmt: &str, text: &str) -> Result<f64, TrafficError> {
    let factor: f64 = text.parse().map_err(|_| TrafficError::Parse {
        statement: stmt.to_string(),
        reason: format!("bad factor {text:?}"),
    })?;
    if !factor.is_finite() {
        return Err(TrafficError::FactorNotFinite);
    }
    if factor < 1.0 {
        return Err(TrafficError::FactorBelowOne { factor });
    }
    Ok(factor)
}

fn parse_edge_id(stmt: &str, text: &str) -> Result<u32, TrafficError> {
    text.parse().map_err(|_| TrafficError::Parse {
        statement: stmt.to_string(),
        reason: format!("bad edge id {text:?}"),
    })
}

fn parse_statement(stmt: &str) -> Result<TrafficOp, TrafficError> {
    if stmt == "clear" {
        return Ok(TrafficOp::Clear);
    }
    let (verb, rest) = stmt.split_once(':').ok_or_else(|| TrafficError::Parse {
        statement: stmt.to_string(),
        reason: "expected <verb>:<args>".to_string(),
    })?;
    match verb {
        "edge" => {
            let (id, factor) = rest.split_once('*').ok_or_else(|| TrafficError::Parse {
                statement: stmt.to_string(),
                reason: "expected edge:<id>*<factor>".to_string(),
            })?;
            Ok(TrafficOp::EdgeFactor {
                edge: parse_edge_id(stmt, id.trim())?,
                factor: parse_factor(stmt, factor.trim())?,
            })
        }
        "cat" => {
            let (tag, factor) = rest.split_once('*').ok_or_else(|| TrafficError::Parse {
                statement: stmt.to_string(),
                reason: "expected cat:<osm_tag>*<factor>".to_string(),
            })?;
            let tag = tag.trim();
            let category = arp_roadnet::RoadCategory::from_osm_tag(tag).ok_or_else(|| {
                TrafficError::UnknownCategory {
                    tag: tag.to_string(),
                }
            })?;
            Ok(TrafficOp::CategoryFactor {
                category: category.code(),
                factor: parse_factor(stmt, factor.trim())?,
            })
        }
        "close" => match rest.split_once("@@") {
            // The absolute-expiry (journal) form must be checked before
            // the single-`@` TTL form, which would otherwise swallow it.
            Some((id, expiry)) => {
                let expiry: u64 = expiry.trim().parse().map_err(|_| TrafficError::Parse {
                    statement: stmt.to_string(),
                    reason: format!("bad expiry tick {:?}", expiry.trim()),
                })?;
                Ok(TrafficOp::CloseAt {
                    edge: parse_edge_id(stmt, id.trim())?,
                    expiry,
                })
            }
            None => match rest.split_once('@') {
                Some((id, ttl)) => {
                    let ttl: u32 = ttl.trim().parse().map_err(|_| TrafficError::Parse {
                        statement: stmt.to_string(),
                        reason: format!("bad ttl {:?}", ttl.trim()),
                    })?;
                    Ok(TrafficOp::Close {
                        edge: parse_edge_id(stmt, id.trim())?,
                        ttl: Some(ttl),
                    })
                }
                None => Ok(TrafficOp::Close {
                    edge: parse_edge_id(stmt, rest.trim())?,
                    ttl: None,
                }),
            },
        },
        "reopen" => Ok(TrafficOp::Reopen {
            edge: parse_edge_id(stmt, rest.trim())?,
        }),
        other => Err(TrafficError::Parse {
            statement: stmt.to_string(),
            reason: format!("unknown verb {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        let text = "cat:primary*1.8; close:412@3; edge:77*2.5; reopen:9; close:5; clear";
        let delta = TrafficDelta::parse(text).unwrap();
        assert_eq!(delta.ops.len(), 6);
        let rendered = delta.to_string();
        assert_eq!(TrafficDelta::parse(&rendered).unwrap(), delta);
    }

    #[test]
    fn whitespace_and_trailing_separator_tolerated() {
        let delta = TrafficDelta::parse("  edge:1*2.0 ;; close:2 ; ").unwrap();
        assert_eq!(delta.ops.len(), 2);
        assert!(TrafficDelta::parse("").unwrap().is_empty());
        assert!(TrafficDelta::parse("  ;  ").unwrap().is_empty());
    }

    #[test]
    fn factors_below_one_are_rejected() {
        assert_eq!(
            TrafficDelta::parse("edge:1*0.5"),
            Err(TrafficError::FactorBelowOne { factor: 0.5 })
        );
        assert_eq!(
            TrafficDelta::parse("cat:primary*0.0"),
            Err(TrafficError::FactorBelowOne { factor: 0.0 })
        );
        assert_eq!(
            TrafficDelta::parse("edge:1*inf"),
            Err(TrafficError::FactorNotFinite)
        );
        assert!(matches!(
            TrafficDelta::parse("edge:1*NaN"),
            Err(TrafficError::FactorNotFinite)
        ));
    }

    #[test]
    fn malformed_statements_reject_the_whole_delta() {
        assert!(TrafficDelta::parse("edge:1*2.0; bogus").is_err());
        assert!(TrafficDelta::parse("edge:*2.0").is_err());
        assert!(TrafficDelta::parse("edge:1").is_err());
        assert!(TrafficDelta::parse("close:abc").is_err());
        assert!(TrafficDelta::parse("close:1@xyz").is_err());
        assert!(TrafficDelta::parse("cat:autobahn*2.0").is_err());
        assert!(TrafficDelta::parse("open:1").is_err());
    }

    #[test]
    fn absolute_expiry_closures_parse_and_round_trip() {
        let delta = TrafficDelta::parse("close:7@@19").unwrap();
        assert_eq!(
            delta.ops[0],
            TrafficOp::CloseAt {
                edge: 7,
                expiry: 19
            }
        );
        assert_eq!(delta.to_string(), "close:7@@19");
        assert_eq!(TrafficDelta::parse(&delta.to_string()).unwrap(), delta);
        assert!(TrafficDelta::parse("close:7@@").is_err());
        assert!(TrafficDelta::parse("close:@@5").is_err());
        assert!(TrafficDelta::parse("close:7@@-1").is_err());
    }

    #[test]
    fn journal_form_absolutizes_ttls_only() {
        let delta =
            TrafficDelta::parse("close:1@3; close:2; close:4@@99; edge:0*2.0; clear").unwrap();
        let journal = delta.to_journal_form(10);
        assert_eq!(
            journal.ops[0],
            TrafficOp::CloseAt {
                edge: 1,
                expiry: 13
            },
            "relative TTL becomes now + ttl"
        );
        assert_eq!(journal.ops[1], TrafficOp::Close { edge: 2, ttl: None });
        assert_eq!(
            journal.ops[2],
            TrafficOp::CloseAt {
                edge: 4,
                expiry: 99
            }
        );
        assert_eq!(journal.ops[3..], delta.ops[3..]);
        // Journal form is a fixpoint: absolutizing twice changes nothing.
        assert_eq!(journal.to_journal_form(500), journal);
    }

    #[test]
    fn category_tags_map_to_codes() {
        let delta = TrafficDelta::parse("cat:motorway*1.5").unwrap();
        assert_eq!(
            delta.ops[0],
            TrafficOp::CategoryFactor {
                category: arp_roadnet::RoadCategory::Motorway.code(),
                factor: 1.5,
            }
        );
    }
}
