#![deny(missing_docs)]
//! # arp-traffic
//!
//! The **live-traffic subsystem**: epoch-versioned weight overlays,
//! delta ingestion, and a deterministic feed generator.
//!
//! The paper's central finding is that technique quality hinges on
//! *travel-time data divergence* — routes flip when the weights move.
//! This crate makes the weights move **while the system is under load**,
//! safely:
//!
//! * [`TrafficOverlay`] accumulates slow-down factors (per edge, per
//!   road category) and incident closures over an `arp-roadnet` graph,
//!   and materializes them into an effective weight column.
//! * [`TrafficDelta`] is the ingestion grammar
//!   (`cat:primary*1.8; close:412@3`), shared by `POST /api/traffic`
//!   and the feed.
//! * [`TrafficFeed`] deterministically generates rush-hour waves and
//!   incidents per city morphology ([`CityProfile`]).
//! * [`TrafficState`] publishes immutable [`EpochSnapshot`]s via an
//!   atomic epoch swap: readers pin one snapshot per request and can
//!   never observe a torn update (see the [`epoch`] module docs for the
//!   protocol).
//!
//! Search engines consume snapshots through
//! [`arp_roadnet::weight::WeightView`]; an identity overlay shares the
//! base column outright, so serving without traffic is byte-identical
//! to (and as cheap as) not having this crate at all.
//!
//! ## Durability
//!
//! Traffic state survives crashes and restarts: the [`journal`] module
//! write-ahead-logs every accepted delta (CRC-checksummed, appended
//! *before* the epoch swap publishes), the [`snapshot`] module installs
//! periodic checksummed checkpoints, and [`TrafficState::recover`]
//! rebuilds a state that is epoch-for-epoch identical to the process
//! that never crashed — or, when it finds corruption, quarantines the
//! bad file and serves the newest provably-intact state instead of
//! refusing to start (see [`recovery`]).

pub mod delta;
pub mod epoch;
pub mod error;
pub mod feed;
pub mod journal;
pub mod metrics;
pub mod overlay;
pub mod recovery;
pub mod snapshot;

pub use delta::{TrafficDelta, TrafficOp};
pub use epoch::{ApplyOutcome, EpochListener, EpochSnapshot, TrafficState};
pub use error::TrafficError;
pub use feed::{CityProfile, TrafficFeed};
pub use journal::{FsyncPolicy, Journal, JournalRecord, JOURNAL_FILE};
pub use metrics::{DurabilityMetrics, TrafficMetrics};
pub use overlay::TrafficOverlay;
pub use recovery::{DurabilityConfig, RecoveryReport, RecoveryStatus};
pub use snapshot::{SnapshotStore, StateSnapshot};
