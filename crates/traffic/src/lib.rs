#![deny(missing_docs)]
//! # arp-traffic
//!
//! The **live-traffic subsystem**: epoch-versioned weight overlays,
//! delta ingestion, and a deterministic feed generator.
//!
//! The paper's central finding is that technique quality hinges on
//! *travel-time data divergence* — routes flip when the weights move.
//! This crate makes the weights move **while the system is under load**,
//! safely:
//!
//! * [`TrafficOverlay`] accumulates slow-down factors (per edge, per
//!   road category) and incident closures over an `arp-roadnet` graph,
//!   and materializes them into an effective weight column.
//! * [`TrafficDelta`] is the ingestion grammar
//!   (`cat:primary*1.8; close:412@3`), shared by `POST /api/traffic`
//!   and the feed.
//! * [`TrafficFeed`] deterministically generates rush-hour waves and
//!   incidents per city morphology ([`CityProfile`]).
//! * [`TrafficState`] publishes immutable [`EpochSnapshot`]s via an
//!   atomic epoch swap: readers pin one snapshot per request and can
//!   never observe a torn update (see the [`epoch`] module docs for the
//!   protocol).
//!
//! Search engines consume snapshots through
//! [`arp_roadnet::weight::WeightView`]; an identity overlay shares the
//! base column outright, so serving without traffic is byte-identical
//! to (and as cheap as) not having this crate at all.

pub mod delta;
pub mod epoch;
pub mod error;
pub mod feed;
pub mod metrics;
pub mod overlay;

pub use delta::{TrafficDelta, TrafficOp};
pub use epoch::{ApplyOutcome, EpochListener, EpochSnapshot, TrafficState};
pub use error::TrafficError;
pub use feed::{CityProfile, TrafficFeed};
pub use metrics::TrafficMetrics;
pub use overlay::TrafficOverlay;
