//! Checksummed snapshots of the full traffic state — factors, closures
//! (with **absolute** expiry ticks), tick and epoch counters — written
//! periodically so recovery never has to replay an unbounded journal.
//!
//! ## File format
//!
//! ```text
//! file    := magic "ARPSNAP1" [len: u32] [crc: u32] [payload]
//! payload := [epoch: u64] [tick: u64]
//!            [n_cat: u32]  n_cat  × ([code: u8] [factor: f64 bits])
//!            [n_edge: u32] n_edge × ([edge: u32] [factor: f64 bits])
//!            [n_close: u32] n_close × ([edge: u32] [has_expiry: u8] [expiry: u64])
//! ```
//!
//! All integers little-endian; `crc` is the IEEE CRC-32 of the payload.
//!
//! ## Installation and retention
//!
//! A snapshot is written to `snap-<epoch>.arps.tmp`, fsynced, then
//! `rename(2)`d into place — readers either see the old complete file or
//! the new complete file, never a half-written one. After an install the
//! store prunes all but the newest `retain` snapshots. Loading tries
//! newest-first and **quarantines** (renames to `*.quarantine`) any file
//! that fails its checksum or decode, falling back to the next-oldest.

use std::fs;
use std::path::{Path, PathBuf};

use crate::journal::crc32;
use crate::overlay::TrafficOverlay;

/// Magic bytes at the start of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ARPSNAP1";

/// Snapshot file name prefix (`snap-<epoch zero-padded>.arps`).
const SNAPSHOT_PREFIX: &str = "snap-";
/// Snapshot file name suffix.
const SNAPSHOT_SUFFIX: &str = ".arps";

/// A point-in-time capture of the traffic state.
#[derive(Clone, Debug, PartialEq)]
pub struct StateSnapshot {
    /// The epoch the captured overlay was published under.
    pub epoch: u64,
    /// The feed tick at capture time.
    pub tick: u64,
    /// The overlay itself (closures carry absolute expiry ticks).
    pub overlay: TrafficOverlay,
}

impl StateSnapshot {
    /// Encodes the snapshot into its on-disk bytes (magic + header +
    /// payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.epoch.to_le_bytes());
        payload.extend_from_slice(&self.tick.to_le_bytes());
        let cats = self.overlay.category_factor_entries();
        payload.extend_from_slice(&(cats.len() as u32).to_le_bytes());
        for (code, factor) in &cats {
            payload.push(*code);
            payload.extend_from_slice(&factor.to_bits().to_le_bytes());
        }
        let edges = self.overlay.edge_factor_entries();
        payload.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for (edge, factor) in &edges {
            payload.extend_from_slice(&edge.to_le_bytes());
            payload.extend_from_slice(&factor.to_bits().to_le_bytes());
        }
        let closures = self.overlay.closure_entries();
        payload.extend_from_slice(&(closures.len() as u32).to_le_bytes());
        for (edge, expiry) in &closures {
            payload.extend_from_slice(&edge.to_le_bytes());
            payload.push(expiry.is_some() as u8);
            payload.extend_from_slice(&expiry.unwrap_or(0).to_le_bytes());
        }
        let mut bytes = Vec::with_capacity(16 + payload.len());
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Decodes snapshot bytes, verifying magic, length and checksum.
    pub fn decode(bytes: &[u8]) -> Result<StateSnapshot, String> {
        if bytes.len() < 16 || &bytes[0..8] != SNAPSHOT_MAGIC {
            return Err("bad snapshot magic".to_string());
        }
        let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let payload = bytes
            .get(16..16 + len)
            .ok_or_else(|| "snapshot truncated".to_string())?;
        if 16 + len != bytes.len() {
            return Err("trailing bytes after snapshot payload".to_string());
        }
        if crc32(payload) != crc {
            return Err("snapshot checksum mismatch".to_string());
        }
        let mut cursor = Cursor {
            buf: payload,
            off: 0,
        };
        let epoch = cursor.u64()?;
        let tick = cursor.u64()?;
        let n_cat = cursor.u32()? as usize;
        let mut cats = Vec::with_capacity(n_cat.min(64));
        for _ in 0..n_cat {
            let code = cursor.u8()?;
            let factor = f64::from_bits(cursor.u64()?);
            cats.push((code, factor));
        }
        let n_edge = cursor.u32()? as usize;
        let mut edges = Vec::with_capacity(n_edge.min(1 << 16));
        for _ in 0..n_edge {
            let edge = cursor.u32()?;
            let factor = f64::from_bits(cursor.u64()?);
            edges.push((edge, factor));
        }
        let n_close = cursor.u32()? as usize;
        let mut closures = Vec::with_capacity(n_close.min(1 << 16));
        for _ in 0..n_close {
            let edge = cursor.u32()?;
            let has_expiry = cursor.u8()? != 0;
            let expiry = cursor.u64()?;
            closures.push((edge, has_expiry.then_some(expiry)));
        }
        if cursor.off != payload.len() {
            return Err("trailing bytes inside snapshot payload".to_string());
        }
        let overlay = TrafficOverlay::from_parts(&cats, &edges, &closures)
            .ok_or_else(|| "snapshot carries invalid overlay entries".to_string())?;
        Ok(StateSnapshot {
            epoch,
            tick,
            overlay,
        })
    }
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let slice = self
            .buf
            .get(self.off..self.off + n)
            .ok_or_else(|| "snapshot payload truncated".to_string())?;
        self.off += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Manages the snapshot files inside one state directory.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    retain: usize,
}

impl SnapshotStore {
    /// A store over `dir`, keeping the newest `retain` snapshots (minimum
    /// 1) after each install.
    pub fn new(dir: impl Into<PathBuf>, retain: usize) -> SnapshotStore {
        SnapshotStore {
            dir: dir.into(),
            retain: retain.max(1),
        }
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(epoch: u64) -> String {
        format!("{SNAPSHOT_PREFIX}{epoch:020}{SNAPSHOT_SUFFIX}")
    }

    /// Writes `snap` atomically (tmp + fsync + rename) and prunes old
    /// snapshots. Returns the installed path and how many were pruned.
    pub fn write(&self, snap: &StateSnapshot) -> std::io::Result<(PathBuf, usize)> {
        let bytes = snap.encode();
        let final_path = self.dir.join(Self::file_name(snap.epoch));
        let tmp_path = final_path.with_extension("arps.tmp");
        {
            let mut file = fs::File::create(&tmp_path)?;
            use std::io::Write;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Best-effort directory fsync so the rename itself is durable.
        if let Ok(dir) = fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        let pruned = self.prune()?;
        Ok((final_path, pruned))
    }

    /// Removes all but the newest `retain` snapshots. Returns how many
    /// files were removed.
    fn prune(&self) -> std::io::Result<usize> {
        let mut names = self.snapshot_names()?;
        if names.len() <= self.retain {
            return Ok(0);
        }
        names.sort();
        let excess = names.len() - self.retain;
        let mut pruned = 0;
        for name in names.into_iter().take(excess) {
            if fs::remove_file(self.dir.join(&name)).is_ok() {
                pruned += 1;
            }
        }
        Ok(pruned)
    }

    fn snapshot_names(&self) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(SNAPSHOT_PREFIX) && name.ends_with(SNAPSHOT_SUFFIX) {
                names.push(name);
            }
        }
        Ok(names)
    }

    /// Loads the newest decodable snapshot, quarantining (renaming to
    /// `<name>.quarantine`) every newer file that fails its checksum or
    /// decode. Returns the snapshot (if any survived) and the quarantined
    /// file names.
    pub fn load_newest(&self) -> (Option<(StateSnapshot, PathBuf)>, Vec<String>) {
        let mut names = match self.snapshot_names() {
            Ok(names) => names,
            Err(_) => return (None, Vec::new()),
        };
        names.sort();
        names.reverse();
        let mut quarantined = Vec::new();
        for name in names {
            let path = self.dir.join(&name);
            let decoded = fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| StateSnapshot::decode(&bytes));
            match decoded {
                Ok(snap) => return (Some((snap, path)), quarantined),
                Err(_) => {
                    let _ = fs::rename(&path, path.with_extension("arps.quarantine"));
                    quarantined.push(name);
                }
            }
        }
        (None, quarantined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::TrafficDelta;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::csr::RoadNetwork;
    use arp_roadnet::geo::Point;

    fn line(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_node(Point::new(i as f64 * 0.01, 0.0)))
            .collect();
        for i in 0..n - 1 {
            b.add_bidirectional(
                ids[i],
                ids[i + 1],
                EdgeSpec::category(RoadCategory::Primary),
            );
        }
        b.build()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("arp_snapshot_test_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_overlay() -> TrafficOverlay {
        let net = line(8);
        let mut overlay = TrafficOverlay::identity();
        overlay
            .apply(
                &net,
                &TrafficDelta::parse("cat:primary*1.8; edge:3*2.5; close:1@@17; close:5").unwrap(),
                4,
            )
            .unwrap();
        overlay
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = StateSnapshot {
            epoch: 42,
            tick: 9,
            overlay: sample_overlay(),
        };
        let decoded = StateSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        // The identity overlay round-trips too.
        let empty = StateSnapshot {
            epoch: 0,
            tick: 0,
            overlay: TrafficOverlay::identity(),
        };
        assert_eq!(StateSnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_corruption() {
        let snap = StateSnapshot {
            epoch: 7,
            tick: 3,
            overlay: sample_overlay(),
        };
        let bytes = snap.encode();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(StateSnapshot::decode(&bad).is_err());
        // Flipped payload bit.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(StateSnapshot::decode(&bad).is_err());
        // Truncation.
        assert!(StateSnapshot::decode(&bytes[..bytes.len() - 4]).is_err());
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(StateSnapshot::decode(&bad).is_err());
    }

    #[test]
    fn store_installs_atomically_and_prunes() {
        let dir = temp_dir("prune");
        let store = SnapshotStore::new(&dir, 2);
        for epoch in 1..=4u64 {
            let snap = StateSnapshot {
                epoch,
                tick: epoch,
                overlay: TrafficOverlay::identity(),
            };
            store.write(&snap).unwrap();
        }
        let names = store.snapshot_names().unwrap();
        assert_eq!(names.len(), 2, "retain=2 keeps only the newest two");
        let (loaded, quarantined) = store.load_newest();
        assert!(quarantined.is_empty());
        assert_eq!(loaded.unwrap().0.epoch, 4);
        // No tmp files left behind.
        assert!(store
            .snapshot_names()
            .unwrap()
            .iter()
            .all(|n| !n.ends_with(".tmp")));
    }

    #[test]
    fn corrupt_newest_snapshot_is_quarantined_and_older_used() {
        let dir = temp_dir("quarantine");
        let store = SnapshotStore::new(&dir, 4);
        for epoch in [3u64, 9] {
            let snap = StateSnapshot {
                epoch,
                tick: epoch,
                overlay: sample_overlay(),
            };
            store.write(&snap).unwrap();
        }
        // Corrupt the newest file.
        let newest = dir.join(SnapshotStore::file_name(9));
        let mut bytes = fs::read(&newest).unwrap();
        bytes[20] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();
        let (loaded, quarantined) = store.load_newest();
        assert_eq!(
            loaded.unwrap().0.epoch,
            3,
            "fell back to the older snapshot"
        );
        assert_eq!(quarantined, vec![SnapshotStore::file_name(9)]);
        assert!(dir
            .join(SnapshotStore::file_name(9))
            .with_extension("arps.quarantine")
            .exists());
    }
}
