//! [`TrafficFeed`]: a deterministic, seedable generator of traffic ticks.
//!
//! The feed is **stateless**: `delta_for_tick(tick, num_edges)` is a pure
//! function of `(seed, profile, tick)`, so replaying a schedule — in the
//! `repro_traffic` bench, in tests, or across serve restarts — always
//! produces the identical sequence of deltas. Each tick is one "hour" of
//! a 24-tick day: rush-hour waves crest at ticks 8 and 17, with the slow
//! -down distributed over road categories according to the city's
//! morphology, plus randomly spawned incident closures with short TTLs.

use arp_roadnet::category::RoadCategory;

use crate::delta::{TrafficDelta, TrafficOp};

/// City morphology: decides which road categories bear the rush hour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CityProfile {
    /// Melbourne-like regular grid: arterials (motorway/primary) jam
    /// first, the grid absorbs the rest.
    Grid,
    /// Dhaka-like dense organic web: congestion is everywhere, the
    /// minor-road mesh saturates along with the arterials.
    Organic,
    /// Copenhagen-like radial "finger plan": the radial trunk fingers
    /// carry the commute and jam hardest.
    Radial,
}

impl CityProfile {
    /// Maps a city name (as used by `arp-citygen`) to its profile.
    /// Unknown names get [`CityProfile::Grid`].
    pub fn for_city_name(name: &str) -> CityProfile {
        match name {
            "Dhaka" => CityProfile::Organic,
            "Copenhagen" => CityProfile::Radial,
            _ => CityProfile::Grid,
        }
    }

    /// Per-category share of the peak slow-down (1.0 = full amplitude).
    fn category_share(self, category: RoadCategory) -> f64 {
        use RoadCategory::*;
        match self {
            CityProfile::Grid => match category {
                Motorway | MotorwayLink => 1.0,
                Trunk | Primary => 0.8,
                Secondary => 0.5,
                Tertiary | Residential => 0.3,
                Unclassified | Service => 0.1,
            },
            CityProfile::Organic => match category {
                Motorway | MotorwayLink => 0.7,
                Trunk | Primary => 0.9,
                Secondary | Tertiary => 0.8,
                Residential | Unclassified => 0.6,
                Service => 0.3,
            },
            CityProfile::Radial => match category {
                Motorway | MotorwayLink | Trunk => 1.0,
                Primary => 0.6,
                Secondary => 0.4,
                Tertiary | Residential | Unclassified | Service => 0.2,
            },
        }
    }
}

/// The deterministic tick generator. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct TrafficFeed {
    seed: u64,
    profile: CityProfile,
    /// Peak extra slow-down at the rush-hour crest: a category with
    /// share 1.0 reaches factor `1.0 + amplitude`.
    amplitude: f64,
    /// Expected incident closures spawned per tick (each with a TTL of
    /// 1–4 ticks).
    incident_rate: f64,
}

impl TrafficFeed {
    /// A feed with the default rush-hour shape: peak factor `1.0 +
    /// amplitude` on the profile's busiest categories, ~`incident_rate`
    /// closures per tick.
    pub fn new(seed: u64, profile: CityProfile) -> TrafficFeed {
        TrafficFeed {
            seed,
            profile,
            amplitude: 1.2,
            incident_rate: 0.5,
        }
    }

    /// Overrides the peak amplitude (clamped non-negative).
    pub fn with_amplitude(mut self, amplitude: f64) -> TrafficFeed {
        self.amplitude = amplitude.max(0.0);
        self
    }

    /// Overrides the expected incidents per tick (clamped non-negative).
    pub fn with_incident_rate(mut self, rate: f64) -> TrafficFeed {
        self.incident_rate = rate.max(0.0);
        self
    }

    /// A feed that never changes anything: every tick yields the empty
    /// delta (the epoch still advances — quiet hours are real hours).
    pub fn quiet() -> TrafficFeed {
        TrafficFeed {
            seed: 0,
            profile: CityProfile::Grid,
            amplitude: 0.0,
            incident_rate: 0.0,
        }
    }

    /// The feed's city profile.
    pub fn profile(&self) -> CityProfile {
        self.profile
    }

    /// Rush-hour intensity in `[0, 1]` for a tick: two triangular waves
    /// peaking at hours 8 and 17 of the 24-tick day, each 3 hours wide.
    pub fn intensity(&self, tick: u64) -> f64 {
        let hour = (tick % 24) as f64;
        let peak = |center: f64| -> f64 {
            let d = (hour - center).abs();
            (1.0 - d / 3.0).max(0.0)
        };
        peak(8.0).max(peak(17.0))
    }

    /// The delta for `tick` on a network of `num_edges` edges. Pure:
    /// identical `(seed, profile, tick)` always yields the identical
    /// delta. Quiet hours (intensity 0, no incident drawn) yield the
    /// empty delta.
    pub fn delta_for_tick(&self, tick: u64, num_edges: usize) -> TrafficDelta {
        let mut ops = Vec::new();
        let intensity = self.intensity(tick);
        if self.amplitude > 0.0 {
            for &category in &arp_roadnet::category::ALL_CATEGORIES {
                let share = self.profile.category_share(category);
                let factor = 1.0 + self.amplitude * intensity * share;
                // Round to 3 decimals so the grammar rendering of a
                // feed delta round-trips exactly.
                let factor = (factor * 1000.0).round() / 1000.0;
                ops.push(TrafficOp::CategoryFactor {
                    category: category.code(),
                    factor,
                });
            }
        }
        if self.incident_rate > 0.0 && num_edges > 0 {
            let mut rng = Xorshift::new(self.seed, tick);
            // Poisson-ish: draw ⌈rate⌉ candidates, keep each with
            // probability rate/⌈rate⌉.
            let draws = self.incident_rate.ceil() as u32;
            let keep = self.incident_rate / draws as f64;
            for _ in 0..draws {
                if rng.next_f64() < keep {
                    let edge = (rng.next_u64() % num_edges as u64) as u32;
                    let ttl = 1 + (rng.next_u64() % 4) as u32;
                    ops.push(TrafficOp::Close {
                        edge,
                        ttl: Some(ttl),
                    });
                }
            }
        }
        TrafficDelta { ops }
    }
}

/// Minimal xorshift64* PRNG, split-seeded per tick so the feed stays
/// stateless (no generator to advance or persist).
struct Xorshift {
    state: u64,
}

impl Xorshift {
    fn new(seed: u64, tick: u64) -> Xorshift {
        // SplitMix64-style scrambling of (seed, tick) into a non-zero state.
        let mut z = seed ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Xorshift {
            state: z | 1, // never zero
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_tick_same_delta() {
        let a = TrafficFeed::new(42, CityProfile::Organic);
        let b = TrafficFeed::new(42, CityProfile::Organic);
        for tick in 0..48 {
            assert_eq!(a.delta_for_tick(tick, 1000), b.delta_for_tick(tick, 1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = TrafficFeed::new(1, CityProfile::Grid);
        let b = TrafficFeed::new(2, CityProfile::Grid);
        let differs = (0..48).any(|t| a.delta_for_tick(t, 1000) != b.delta_for_tick(t, 1000));
        assert!(differs);
    }

    #[test]
    fn rush_hour_peaks_and_quiet_troughs() {
        let feed = TrafficFeed::new(7, CityProfile::Grid);
        assert_eq!(feed.intensity(8), 1.0);
        assert_eq!(feed.intensity(17), 1.0);
        assert_eq!(feed.intensity(2), 0.0);
        assert!(feed.intensity(7) > feed.intensity(6));
        // Day 2 repeats day 1.
        assert_eq!(feed.intensity(8), feed.intensity(32));
    }

    #[test]
    fn quiet_feed_emits_empty_deltas() {
        let feed = TrafficFeed::quiet();
        for tick in 0..24 {
            assert!(feed.delta_for_tick(tick, 500).is_empty());
        }
    }

    #[test]
    fn factors_are_valid_grammar() {
        // Every generated delta must survive a grammar round-trip (the
        // feed and POST /api/traffic share one validation path).
        let feed = TrafficFeed::new(9, CityProfile::Radial);
        for tick in 0..24 {
            let delta = feed.delta_for_tick(tick, 250);
            let rendered = delta.to_string();
            assert_eq!(TrafficDelta::parse(&rendered).unwrap(), delta, "{rendered}");
            for op in &delta.ops {
                if let TrafficOp::CategoryFactor { factor, .. } = op {
                    assert!(*factor >= 1.0);
                }
            }
        }
    }

    #[test]
    fn incidents_reference_valid_edges() {
        let feed = TrafficFeed::new(3, CityProfile::Organic).with_incident_rate(3.0);
        let mut spawned = 0;
        for tick in 0..100 {
            for op in feed.delta_for_tick(tick, 77).ops {
                if let TrafficOp::Close { edge, ttl } = op {
                    assert!(edge < 77);
                    assert!((1..=4).contains(&ttl.unwrap()));
                    spawned += 1;
                }
            }
        }
        assert!(spawned > 100, "rate 3.0 over 100 ticks spawned {spawned}");
    }

    #[test]
    fn profiles_weight_categories_differently() {
        let grid = TrafficFeed::new(5, CityProfile::Grid);
        let organic = TrafficFeed::new(5, CityProfile::Organic).with_incident_rate(0.0);
        let grid_d = grid.with_incident_rate(0.0).delta_for_tick(8, 100);
        let organic_d = organic.delta_for_tick(8, 100);
        assert_ne!(grid_d, organic_d);
        let residential = RoadCategory::Residential.code();
        let get = |d: &TrafficDelta| {
            d.ops
                .iter()
                .find_map(|op| match op {
                    TrafficOp::CategoryFactor { category, factor } if *category == residential => {
                        Some(*factor)
                    }
                    _ => None,
                })
                .unwrap()
        };
        assert!(
            get(&organic_d) > get(&grid_d),
            "Dhaka's residential web jams harder than Melbourne's"
        );
    }
}
