//! Error type of the live-traffic subsystem.

use std::fmt;

/// Everything that can go wrong ingesting or applying a traffic delta.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficError {
    /// A delta statement failed to parse. Carries the offending statement
    /// and a human-readable reason.
    Parse {
        /// The statement text that failed.
        statement: String,
        /// Why it failed.
        reason: String,
    },
    /// A speed factor below 1.0 was supplied. Factors must be ≥ 1.0:
    /// traffic only ever slows a road (and the A* max-speed heuristic
    /// stays admissible only when effective weights never drop below
    /// the base).
    FactorBelowOne {
        /// The rejected factor.
        factor: f64,
    },
    /// A non-finite (NaN/∞) factor was supplied.
    FactorNotFinite,
    /// An edge id outside the network was referenced.
    EdgeOutOfRange {
        /// The rejected id.
        edge: u32,
        /// The network's edge count.
        num_edges: usize,
    },
    /// An unknown road-category tag was referenced by a `cat:` statement.
    UnknownCategory {
        /// The unrecognized tag.
        tag: String,
    },
    /// The write-ahead journal append failed (disk full, EIO, injected
    /// fault). The delta was **not** applied and the epoch did not move:
    /// durability is a precondition of publication. Servers map this to
    /// HTTP 503 — the client may retry.
    Journal {
        /// The underlying I/O error, stringified (this enum is `Clone +
        /// PartialEq`; `std::io::Error` is neither).
        reason: String,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::Parse { statement, reason } => {
                write!(f, "cannot parse traffic statement {statement:?}: {reason}")
            }
            TrafficError::FactorBelowOne { factor } => {
                write!(
                    f,
                    "traffic factor {factor} < 1.0 (traffic only slows roads)"
                )
            }
            TrafficError::FactorNotFinite => write!(f, "traffic factor must be finite"),
            TrafficError::EdgeOutOfRange { edge, num_edges } => {
                write!(
                    f,
                    "edge {edge} out of range (network has {num_edges} edges)"
                )
            }
            TrafficError::UnknownCategory { tag } => {
                write!(f, "unknown road category tag {tag:?}")
            }
            TrafficError::Journal { reason } => {
                write!(f, "traffic journal append failed: {reason}")
            }
        }
    }
}

impl std::error::Error for TrafficError {}
