//! Epoch-versioned publication of traffic state: [`EpochSnapshot`] (what
//! readers pin) and [`TrafficState`] (the single writer that swaps them).
//!
//! ## The epoch-swap protocol
//!
//! A delta is applied in four steps, all under one short write lock:
//! clone the overlay, mutate the clone, materialize the new effective
//! weight column into a fresh `Arc<Vec<Weight>>`, then publish a new
//! [`EpochSnapshot`] with `epoch = old + 1` (wrapping). Readers call
//! [`TrafficState::snapshot`] **once per request** and keep the returned
//! `Arc` for the request's whole lifetime — that single clone *is* the
//! epoch pin: the column it references is immutable and stays alive
//! however many swaps happen mid-request, so an in-flight search can
//! never observe a torn update or a mixture of two epochs. The trade is
//! one `Arc` clone per request against zero synchronization inside the
//! search hot loops.

use std::sync::{Arc, RwLock};

use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::weight::{Weight, WeightView};

use crate::delta::TrafficDelta;
use crate::error::TrafficError;
use crate::feed::TrafficFeed;
use crate::metrics::{DurabilityMetrics, TrafficMetrics};
use crate::overlay::TrafficOverlay;
use crate::recovery::{self, Durability, DurabilityConfig, RecoveryReport};
use crate::snapshot::StateSnapshot;

/// One immutable, published traffic epoch: the effective weight column
/// plus the summary numbers `/api/health` reports.
///
/// Implements [`WeightView`], so engines and providers consume it (or
/// its [`EpochSnapshot::weights`] column) directly.
#[derive(Clone, Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    weights: Arc<Vec<Weight>>,
    closures: usize,
    overlay_size: usize,
}

impl EpochSnapshot {
    /// The epoch stamp (0 = base weights, never overlaid).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The effective weight column (shared; cloning the `Arc` is cheap).
    pub fn weights(&self) -> &Arc<Vec<Weight>> {
        &self.weights
    }

    /// Active incident closures at publication time.
    pub fn closures(&self) -> usize {
        self.closures
    }

    /// Total overlay entries (closures + edge factors + category
    /// factors) at publication time.
    pub fn overlay_size(&self) -> usize {
        self.overlay_size
    }

    /// The traffic-epoch attribute a request's root trace span is
    /// stamped with, tying every captured trace to the exact weight
    /// column it was served under.
    pub fn trace_attr(&self) -> (&'static str, String) {
        ("traffic_epoch", self.epoch.to_string())
    }
}

impl WeightView for EpochSnapshot {
    fn column(&self) -> &[Weight] {
        &self.weights
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Outcome of one applied delta / advanced tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// The epoch the swap published.
    pub epoch: u64,
    /// Statements applied by this delta.
    pub applied: usize,
    /// TTL closures that expired during this application.
    pub expired: usize,
    /// Closures active after the swap.
    pub closures_active: usize,
}

/// Interior-mutable writer state, guarded by one `RwLock`.
#[derive(Debug)]
struct State {
    overlay: TrafficOverlay,
    tick: u64,
    snapshot: Arc<EpochSnapshot>,
}

/// Callback invoked with every newly published [`EpochSnapshot`]. The
/// serving tier's index manager registers one to kick off background
/// re-customization of its CH metric on each epoch bump.
pub type EpochListener = Arc<dyn Fn(&Arc<EpochSnapshot>) + Send + Sync>;

/// The live-traffic authority for one road network: owns the overlay,
/// the tick counter and the current epoch, and publishes immutable
/// [`EpochSnapshot`]s.
///
/// Thread-safe: any number of readers pin snapshots while one writer
/// (the feed ticker or `POST /api/traffic`) swaps epochs.
pub struct TrafficState {
    net: Arc<RoadNetwork>,
    base: Arc<Vec<Weight>>,
    metrics: TrafficMetrics,
    state: RwLock<State>,
    listener: RwLock<Option<EpochListener>>,
    /// The durability layer, attached only by the `recover*`
    /// constructors. When present, every swap journals its delta
    /// **before** publishing (journal-then-apply) and periodically
    /// installs snapshot checkpoints.
    durability: Option<Arc<Durability>>,
}

impl std::fmt::Debug for TrafficState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficState")
            .field("epoch", &self.epoch())
            .field("tick", &self.tick())
            .finish_non_exhaustive()
    }
}

impl TrafficState {
    /// A state at epoch 0 with the identity overlay: the published
    /// column is the base weights themselves (shared, not copied).
    pub fn new(net: Arc<RoadNetwork>) -> TrafficState {
        Self::with_metrics(net, TrafficMetrics::default())
    }

    /// Like [`TrafficState::new`] with pre-resolved metrics; the epoch
    /// gauge is initialized to 0.
    pub fn with_metrics(net: Arc<RoadNetwork>, metrics: TrafficMetrics) -> TrafficState {
        let base = Arc::new(net.weights().to_vec());
        let snapshot = Arc::new(EpochSnapshot {
            epoch: 0,
            weights: Arc::clone(&base),
            closures: 0,
            overlay_size: 0,
        });
        metrics.epoch.set(0);
        metrics.closures_active.set(0);
        TrafficState {
            net,
            base,
            metrics,
            state: RwLock::new(State {
                overlay: TrafficOverlay::identity(),
                tick: 0,
                snapshot,
            }),
            listener: RwLock::new(None),
            durability: None,
        }
    }

    /// Rebuilds a durable state from the state directory `dir` with
    /// default [`DurabilityConfig`] knobs, replaying the journal suffix
    /// over the newest valid snapshot. See [`crate::recovery`] for the
    /// replay invariant and the corruption-degradation ladder. The
    /// returned state journals every subsequent swap into the same
    /// directory.
    pub fn recover(
        net: Arc<RoadNetwork>,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<(TrafficState, RecoveryReport), TrafficError> {
        Self::recover_with(net, DurabilityConfig::new(dir))
    }

    /// [`TrafficState::recover`] with explicit durability knobs.
    pub fn recover_with(
        net: Arc<RoadNetwork>,
        config: DurabilityConfig,
    ) -> Result<(TrafficState, RecoveryReport), TrafficError> {
        Self::recover_with_metrics(
            net,
            TrafficMetrics::default(),
            DurabilityMetrics::default(),
            config,
        )
    }

    /// [`TrafficState::recover_with`] with pre-resolved metric bundles.
    pub fn recover_with_metrics(
        net: Arc<RoadNetwork>,
        metrics: TrafficMetrics,
        durability_metrics: DurabilityMetrics,
        config: DurabilityConfig,
    ) -> Result<(TrafficState, RecoveryReport), TrafficError> {
        let recovered = recovery::recover(&net, &config, durability_metrics)?;
        let base = Arc::new(net.weights().to_vec());
        let weights = recovered.overlay.materialize(&net, &base);
        let closures = recovered.overlay.num_closures();
        let snapshot = Arc::new(EpochSnapshot {
            epoch: recovered.epoch,
            weights,
            closures,
            overlay_size: recovered.overlay.size(),
        });
        metrics.epoch.set(recovered.epoch as i64);
        metrics.closures_active.set(closures as i64);
        let report = recovered.report;
        Ok((
            TrafficState {
                net,
                base,
                metrics,
                state: RwLock::new(State {
                    overlay: recovered.overlay,
                    tick: recovered.tick,
                    snapshot,
                }),
                listener: RwLock::new(None),
                durability: Some(Arc::new(recovered.durability)),
            },
            report,
        ))
    }

    /// True if this state journals its swaps (built by a `recover*`
    /// constructor).
    pub fn durable(&self) -> bool {
        self.durability.is_some()
    }

    /// A copy of the current overlay — the authoritative factor/closure
    /// state behind the published snapshot. Used by recovery tests to
    /// re-validate a replayed state and by operators via debug tooling.
    pub fn overlay_snapshot(&self) -> TrafficOverlay {
        self.state
            .read()
            .expect("traffic lock poisoned")
            .overlay
            .clone()
    }

    /// Installs the `journal.append` failpoint hook (the serving tier
    /// wires its `FaultPlan` in here; `arp-traffic` itself has no
    /// dependency on the fault-injection machinery). No-op on a
    /// non-durable state.
    pub fn set_journal_fault_hook(
        &self,
        hook: impl Fn() -> Result<(), String> + Send + Sync + 'static,
    ) {
        if let Some(durability) = &self.durability {
            durability.set_fault_hook(Some(Box::new(hook)));
        }
    }

    /// Forces a snapshot checkpoint of the current state (and truncates
    /// the journal). The graceful-shutdown drain hook calls this so a
    /// clean restart recovers instantly from the snapshot alone. Returns
    /// `Ok(false)` on a non-durable state.
    pub fn flush_snapshot(&self) -> Result<bool, TrafficError> {
        let Some(durability) = &self.durability else {
            return Ok(false);
        };
        let snap = {
            let state = self.state.read().expect("traffic lock poisoned");
            StateSnapshot {
                epoch: state.snapshot.epoch,
                tick: state.tick,
                overlay: state.overlay.clone(),
            }
        };
        durability.checkpoint(&snap)?;
        Ok(true)
    }

    /// Registers the single epoch listener, invoked with every snapshot
    /// published after registration ([`TrafficState::apply_delta`],
    /// [`TrafficState::advance_tick`] and [`TrafficState::force_epoch`]
    /// all fire it). The callback runs on the *writer's* thread **after**
    /// the publication lock is released — it must hand off long work
    /// (like a CH re-customization) to its own thread rather than block
    /// the feed ticker.
    pub fn set_epoch_listener(
        &self,
        listener: impl Fn(&Arc<EpochSnapshot>) + Send + Sync + 'static,
    ) {
        *self.listener.write().expect("listener lock poisoned") = Some(Arc::new(listener));
    }

    /// Fires the listener (if any) with a freshly published snapshot.
    fn notify(&self, snapshot: &Arc<EpochSnapshot>) {
        let listener = self
            .listener
            .read()
            .expect("listener lock poisoned")
            .clone();
        if let Some(listener) = listener {
            listener(snapshot);
        }
    }

    /// The network this state overlays.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// Pins the current epoch: the returned snapshot (and its weight
    /// column) is immutable and survives any number of later swaps.
    /// Call once per request, at request-construction time.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.state.read().expect("traffic lock poisoned").snapshot)
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.state
            .read()
            .expect("traffic lock poisoned")
            .snapshot
            .epoch
    }

    /// The current feed tick.
    pub fn tick(&self) -> u64 {
        self.state.read().expect("traffic lock poisoned").tick
    }

    /// Applies an explicit delta (the `POST /api/traffic` path) at the
    /// current tick and swaps in a new epoch. Validation failures leave
    /// the published snapshot untouched.
    pub fn apply_delta(&self, delta: &TrafficDelta) -> Result<ApplyOutcome, TrafficError> {
        let (outcome, snapshot) = {
            let mut state = self.state.write().expect("traffic lock poisoned");
            let now = state.tick;
            let outcome = self.swap(&mut state, delta, now, false)?;
            (outcome, Arc::clone(&state.snapshot))
        };
        self.notify(&snapshot);
        Ok(outcome)
    }

    /// Advances the feed clock one tick: expires TTL closures, generates
    /// the feed's delta for the new tick, applies it, and swaps in a new
    /// epoch — one atomic publication per tick.
    pub fn advance_tick(&self, feed: &TrafficFeed) -> Result<ApplyOutcome, TrafficError> {
        let (outcome, snapshot) = {
            let mut state = self.state.write().expect("traffic lock poisoned");
            let tick = state.tick + 1;
            let delta = feed.delta_for_tick(tick, self.net.num_edges());
            // Expiry happens inside swap, on the clone: if the journal
            // append fails, neither the tick counter nor the closures
            // have moved — the failed tick never happened.
            let outcome = self.swap(&mut state, &delta, tick, true)?;
            (outcome, Arc::clone(&state.snapshot))
        };
        self.notify(&snapshot);
        Ok(outcome)
    }

    /// Test/operations hook: republishes the current overlay under an
    /// arbitrary epoch number. Exists so wraparound-sized epochs are
    /// testable without 2^64 swaps; the serving stack treats epochs as
    /// opaque identity, so any value (including `u64::MAX`, which the
    /// next swap wraps to 0) must serve correctly.
    pub fn force_epoch(&self, epoch: u64) {
        let snapshot = {
            let mut state = self.state.write().expect("traffic lock poisoned");
            let weights = state.overlay.materialize(&self.net, &self.base);
            let snapshot = Arc::new(EpochSnapshot {
                epoch,
                weights,
                closures: state.overlay.num_closures(),
                overlay_size: state.overlay.size(),
            });
            state.snapshot = Arc::clone(&snapshot);
            self.metrics.epoch.set(epoch as i64);
            snapshot
        };
        self.notify(&snapshot);
    }

    /// The one swap path: clone-mutate-**journal**-materialize-publish.
    /// Runs under the caller's write lock so validation, mutation and
    /// publication are one atomic step. `advancing` marks the feed-tick
    /// path: the clone's TTL closures are expired at `now` before the
    /// delta applies, and the tick counter commits only on success.
    ///
    /// With durability attached, the journal append sits between
    /// validation and publication: a delta that cannot be made durable
    /// (disk full, EIO, injected fault) is rejected with
    /// [`TrafficError::Journal`] and the epoch never moves — the
    /// journal can describe epochs the process never served, but never
    /// the reverse.
    fn swap(
        &self,
        state: &mut State,
        delta: &TrafficDelta,
        now: u64,
        advancing: bool,
    ) -> Result<ApplyOutcome, TrafficError> {
        let mut next = state.overlay.clone();
        let expired = if advancing { next.expire(now) } else { 0 };
        let applied = next.apply(&self.net, delta, now)?;
        let epoch = state.snapshot.epoch.wrapping_add(1);
        if let Some(durability) = &self.durability {
            // Journal form carries absolute closure expiries, so replay
            // after downtime reproduces exactly this application.
            let journal_delta = delta.to_journal_form(now);
            durability.append(epoch, now, &journal_delta.to_string())?;
        }
        let weights = next.materialize(&self.net, &self.base);
        let closures_active = next.num_closures();
        let snapshot = Arc::new(EpochSnapshot {
            epoch,
            weights,
            closures: closures_active,
            overlay_size: next.size(),
        });
        state.overlay = next;
        state.tick = now;
        state.snapshot = snapshot;
        self.metrics.epoch.set(epoch as i64);
        self.metrics.deltas_applied.add(applied as u64);
        self.metrics.closures_active.set(closures_active as i64);
        if let Some(durability) = &self.durability {
            if durability.should_checkpoint() {
                // Best-effort: a failed checkpoint must not fail the
                // already-published swap; the counter stays up, so the
                // next swap retries.
                let _ = durability.checkpoint(&StateSnapshot {
                    epoch,
                    tick: now,
                    overlay: state.overlay.clone(),
                });
            }
        }
        Ok(ApplyOutcome {
            epoch,
            applied,
            expired,
            closures_active,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::TrafficFeed;
    use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
    use arp_roadnet::category::RoadCategory;
    use arp_roadnet::geo::Point;
    use arp_roadnet::weight::CLOSED;

    fn line(n: usize) -> Arc<RoadNetwork> {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_node(Point::new(i as f64 * 0.01, 0.0)))
            .collect();
        for i in 0..n - 1 {
            b.add_bidirectional(
                ids[i],
                ids[i + 1],
                EdgeSpec::category(RoadCategory::Primary),
            );
        }
        Arc::new(b.build())
    }

    #[test]
    fn epoch_zero_shares_the_base_column() {
        let net = line(4);
        let state = TrafficState::new(Arc::clone(&net));
        let snap = state.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.column(), net.weights());
        // Same allocation as the state's base — zero-copy identity.
        assert!(Arc::ptr_eq(snap.weights(), &state.base));
    }

    #[test]
    fn pinned_snapshots_survive_later_swaps() {
        let net = line(4);
        let state = TrafficState::new(Arc::clone(&net));
        let pinned = state.snapshot();
        let before: Vec<Weight> = pinned.column().to_vec();
        state
            .apply_delta(&TrafficDelta::parse("close:0; cat:primary*2.0").unwrap())
            .unwrap();
        // The pinned epoch still reads the old weights, bit for bit.
        assert_eq!(pinned.column(), &before[..]);
        assert_eq!(pinned.epoch(), 0);
        // A fresh pin sees the new epoch.
        let now = state.snapshot();
        assert_eq!(now.epoch(), 1);
        assert_eq!(now.column()[0], CLOSED);
    }

    #[test]
    fn failed_deltas_do_not_swap() {
        let net = line(3);
        let state = TrafficState::new(net);
        assert!(state
            .apply_delta(&TrafficDelta::parse("close:999").unwrap())
            .is_err());
        assert_eq!(state.epoch(), 0);
        assert_eq!(state.snapshot().overlay_size(), 0);
    }

    #[test]
    fn ticks_expire_ttl_closures_and_restore_base_exactly() {
        let net = line(5);
        let state = TrafficState::new(Arc::clone(&net));
        let quiet = TrafficFeed::quiet();
        state
            .apply_delta(&TrafficDelta::parse("close:1@2").unwrap())
            .unwrap();
        assert_eq!(state.snapshot().closures(), 1);
        // Tick 1: still closed (expires at tick 2).
        let o = state.advance_tick(&quiet).unwrap();
        assert_eq!((o.expired, o.closures_active), (0, 1));
        // Tick 2: expired; the column is the base again — same bytes AND
        // the same allocation (identity overlay short-circuit).
        let o = state.advance_tick(&quiet).unwrap();
        assert_eq!((o.expired, o.closures_active), (1, 0));
        let snap = state.snapshot();
        assert_eq!(snap.column(), net.weights());
        assert!(Arc::ptr_eq(snap.weights(), &state.base));
        assert_eq!(snap.epoch(), 3, "every tick is its own epoch");
    }

    #[test]
    fn epoch_survives_wraparound_sized_bumps() {
        let net = line(3);
        let state = TrafficState::new(net);
        state.force_epoch(u64::MAX);
        assert_eq!(state.epoch(), u64::MAX);
        let pinned = state.snapshot();
        let o = state
            .apply_delta(&TrafficDelta::parse("edge:0*2.0").unwrap())
            .unwrap();
        assert_eq!(o.epoch, 0, "u64::MAX wraps to 0");
        // The two epochs stay distinct pins despite the wrap.
        assert_eq!(pinned.epoch(), u64::MAX);
        assert_ne!(pinned.column(), state.snapshot().column());
    }

    #[test]
    fn epoch_listener_sees_every_publication() {
        use std::sync::Mutex;
        let net = line(4);
        let state = TrafficState::new(net);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        state.set_epoch_listener(move |snap| sink.lock().unwrap().push(snap.epoch()));
        state
            .apply_delta(&TrafficDelta::parse("edge:0*2.0").unwrap())
            .unwrap();
        state.advance_tick(&TrafficFeed::quiet()).unwrap();
        state.force_epoch(77);
        // A rejected delta publishes nothing and must not fire.
        assert!(state
            .apply_delta(&TrafficDelta::parse("close:999").unwrap())
            .is_err());
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 77]);
    }

    #[test]
    fn metrics_track_swaps() {
        let net = line(4);
        let reg = arp_obs::Registry::new();
        let state = TrafficState::with_metrics(net, TrafficMetrics::new(&reg));
        state
            .apply_delta(&TrafficDelta::parse("close:0; edge:1*3.0").unwrap())
            .unwrap();
        assert_eq!(
            reg.counter_value("arp_traffic_deltas_applied_total", &[]),
            2
        );
        let rendered = reg.render_prometheus();
        assert!(rendered.contains("arp_traffic_epoch 1"));
        assert!(rendered.contains("arp_traffic_closures_active 1"));
    }
}
