//! Per-request tracing: span trees, tail-sampled capture, a bounded
//! ring of completed traces.
//!
//! Aggregate counters say *that* a request was slow; a trace says
//! *where*. This module is the dependency-free substrate: a
//! [`SpanCollector`] hands out one [`TraceContext`] per request, the
//! request's stages open [`SpanGuard`]s (monotonic start/end ticks,
//! a status, `key=value` attributes), and on finish the assembled
//! [`CompletedTrace`] is either kept in a fixed-capacity ring buffer or
//! discarded.
//!
//! **Sampling.** Keeping every trace of a busy server is pointless; the
//! interesting ones are the outliers. The collector therefore combines
//! two rules:
//!
//! * **head sampling** — a deterministic, evenly-spread fraction of all
//!   traces (`sample` of [`TraceConfig`]) is kept regardless of outcome,
//!   so the ring always holds representative *healthy* requests to
//!   compare against;
//! * **tail rules** — a trace whose final status is not
//!   [`SpanStatus::Ok`] (degraded, truncated, failed) or whose total
//!   duration reaches `slow_ms` is **always** kept, head sample or not.
//!   The decision is made at finish time, which is what makes it a tail
//!   rule: the spans are recorded first, the verdict comes after.
//!
//! **Cost model.** Span recording is lock-light: a guard accumulates its
//! attributes locally and takes the per-trace mutex exactly once, on
//! end, to push the completed span (the only contention is between one
//! request's own lanes). A collector built from [`TraceConfig::disabled`]
//! (or any guard/context from it) never reads the clock and never
//! allocates — the compiled-in-but-disabled baseline the overhead gate
//! in `reports/trace.txt` measures against.
//!
//! The collector exports four counters into the registry it was built
//! with: `arp_trace_spans_total`, `arp_trace_sampled_total`,
//! `arp_trace_dropped_total` (ring evictions) and
//! `arp_trace_slow_requests_total`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::instruments::Counter;
use crate::registry::Registry;

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits.
///
/// Ids are generated even when tracing is disabled (an HTTP response
/// always carries one), mixed from a process-wide seed and a sequence
/// counter so concurrent requests never collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw 64-bit value (never zero).
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }

    fn generate() -> TraceId {
        static SEED: OnceLock<u64> = OnceLock::new();
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seed = *SEED.get_or_init(|| {
            // Wall-clock nanos give cross-process entropy; the sequence
            // below guarantees in-process uniqueness either way.
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x9e37_79b9_7f4a_7c15)
        });
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        TraceId(if id == 0 { 1 } else { id })
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The standard 64-bit finalizer; one application decorrelates the seed
/// and sequence bits into an id that looks random per request.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// How a span (or a whole trace) ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanStatus {
    /// Completed normally.
    Ok,
    /// Cut short by deadline pressure; carries partial work.
    Truncated,
    /// Served, but with at least one failed or short-circuited part.
    Degraded,
    /// Failed outright.
    Failed,
}

impl SpanStatus {
    /// Stable string for rendering and filters
    /// (`ok | truncated | degraded | failed`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Truncated => "truncated",
            SpanStatus::Degraded => "degraded",
            SpanStatus::Failed => "failed",
        }
    }

    /// Parses the `as_str` form (for endpoint filters).
    pub fn parse(s: &str) -> Option<SpanStatus> {
        match s {
            "ok" => Some(SpanStatus::Ok),
            "truncated" => Some(SpanStatus::Truncated),
            "degraded" => Some(SpanStatus::Degraded),
            "failed" => Some(SpanStatus::Failed),
            _ => None,
        }
    }
}

/// One completed span: a named interval of its trace, with ticks in
/// microseconds since the trace started (monotonic clock, so durations
/// are always non-negative).
#[derive(Clone, Debug)]
pub struct Span {
    /// Span id, unique within the trace (the root is 1).
    pub id: u32,
    /// Parent span id; `None` only for the root.
    pub parent: Option<u32>,
    /// Stage name (`request`, `admission`, `queue`, `prepare`, `lane`,
    /// `assemble`, …).
    pub name: &'static str,
    /// Start tick, µs since the trace origin.
    pub start_us: u64,
    /// End tick, µs since the trace origin (`>= start_us`).
    pub end_us: u64,
    /// How the span ended.
    pub status: SpanStatus,
    /// `key=value` attributes (technique, cache key, epoch, retry and
    /// breaker verdicts, …).
    pub attrs: Vec<(&'static str, String)>,
}

impl Span {
    /// The span's duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Looks up one attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Tunables for the collector. `Default` keeps everything (full
/// sampling) in a 256-trace ring and flags requests slower than 500 ms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceConfig {
    /// Tracing compiled in but off: ids are still generated, nothing is
    /// recorded. The baseline the <3 % overhead gate compares against.
    pub enabled: bool,
    /// Head-sampling rate in `[0, 1]`: the fraction of traces kept
    /// regardless of outcome, spread evenly over the request sequence
    /// (0.1 keeps exactly every 10th). Tail rules keep slow/degraded/
    /// failed/truncated traces even at 0.
    pub sample: f64,
    /// Ring-buffer capacity in completed traces; the oldest is evicted
    /// (and counted in `arp_trace_dropped_total`) when full.
    pub buffer: usize,
    /// Requests at least this slow are always kept and counted in
    /// `arp_trace_slow_requests_total`; 0 disables the slow rule.
    pub slow_ms: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: true,
            sample: 1.0,
            buffer: 256,
            slow_ms: 500,
        }
    }
}

impl TraceConfig {
    /// Tracing compiled in but disabled: every context and guard is a
    /// no-op (ids are still generated).
    pub fn disabled() -> TraceConfig {
        TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        }
    }
}

/// A finished trace as held by the ring buffer.
#[derive(Clone, Debug)]
pub struct CompletedTrace {
    /// The trace id.
    pub id: TraceId,
    /// End-to-end duration in milliseconds.
    pub duration_ms: f64,
    /// The root status the request finished with.
    pub status: SpanStatus,
    /// Whether the head sampler picked this trace (a tail-kept trace may
    /// have `false` here).
    pub head_sampled: bool,
    /// Whether the trace crossed the slow threshold.
    pub slow: bool,
    /// All recorded spans, in completion order. The root has id 1 and no
    /// parent.
    pub spans: Vec<Span>,
}

impl CompletedTrace {
    /// The root span, if recorded.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// The first span with this name.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Every span with this name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Structural well-formedness: exactly one root, every parent link
    /// resolves to an earlier-created span (ids are assigned in creation
    /// order, so parent ids are strictly smaller — no cycles), every
    /// child's interval is contained in its parent's, and every duration
    /// is non-negative.
    pub fn well_nested(&self) -> bool {
        let mut roots = 0usize;
        for span in &self.spans {
            if span.end_us < span.start_us {
                return false;
            }
            match span.parent {
                None => roots += 1,
                Some(parent_id) => {
                    if parent_id >= span.id {
                        return false;
                    }
                    let Some(parent) = self.spans.iter().find(|s| s.id == parent_id) else {
                        return false;
                    };
                    if span.start_us < parent.start_us || span.end_us > parent.end_us {
                        return false;
                    }
                }
            }
        }
        roots == 1
    }
}

/// The mutable heart of one in-flight trace. Guards across threads share
/// it through an `Arc`; the mutex is taken only to push a completed span.
#[derive(Debug)]
struct ActiveTrace {
    origin: Instant,
    next_id: AtomicU32,
    spans: Mutex<Vec<Span>>,
}

impl ActiveTrace {
    fn tick_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn push(&self, span: Span) {
        self.spans.lock().expect("trace poisoned").push(span);
    }
}

/// The recording state shared by a collector's contexts and counters.
#[derive(Debug)]
struct CollectorInner {
    /// Head-sampling rate in permille (‰), pre-scaled from the config.
    sample_permille: u64,
    capacity: usize,
    slow_ms: u64,
    /// Request sequence driving the evenly-spread head sampler.
    seq: AtomicU64,
    ring: Mutex<VecDeque<CompletedTrace>>,
    spans_total: Counter,
    sampled_total: Counter,
    dropped_total: Counter,
    slow_total: Counter,
}

/// Hands out per-request [`TraceContext`]s and owns the ring buffer of
/// kept traces. Cheap to clone (an `Arc` handle); a disabled collector
/// is a `None` and costs one branch per call.
#[derive(Clone, Debug, Default)]
pub struct SpanCollector {
    inner: Option<Arc<CollectorInner>>,
}

impl SpanCollector {
    /// Builds a collector and registers its four counters in `registry`.
    /// A config with `enabled: false` yields a detached collector.
    pub fn new(config: &TraceConfig, registry: &Registry) -> SpanCollector {
        if !config.enabled {
            return SpanCollector::disabled();
        }
        let inner = CollectorInner {
            sample_permille: (config.sample.clamp(0.0, 1.0) * 1000.0).round() as u64,
            capacity: config.buffer.max(1),
            slow_ms: config.slow_ms,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            spans_total: registry.counter(
                "arp_trace_spans_total",
                "Spans recorded across all traces (kept or not).",
                &[],
            ),
            sampled_total: registry.counter(
                "arp_trace_sampled_total",
                "Traces kept in the ring buffer (head sample or tail rule).",
                &[],
            ),
            dropped_total: registry.counter(
                "arp_trace_dropped_total",
                "Kept traces evicted from the ring buffer to make room.",
                &[],
            ),
            slow_total: registry.counter(
                "arp_trace_slow_requests_total",
                "Requests at or above the slow-request threshold.",
                &[],
            ),
        };
        SpanCollector {
            inner: Some(Arc::new(inner)),
        }
    }

    /// A detached no-op collector: contexts still mint trace ids, but
    /// nothing is recorded or kept.
    pub fn disabled() -> SpanCollector {
        SpanCollector { inner: None }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a new trace. The head-sampling verdict is drawn here (from
    /// the request sequence, evenly spread); the tail verdict waits for
    /// [`TraceContext::finish`].
    pub fn start_trace(&self) -> TraceContext {
        let id = TraceId::generate();
        let Some(inner) = &self.inner else {
            return TraceContext {
                id,
                head_sampled: false,
                trace: None,
                collector: None,
            };
        };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        // Bresenham spread: keep iff the running total of kept traces
        // advances at this sequence number — exactly `sample` of all
        // requests, without bursts.
        let p = inner.sample_permille;
        let head_sampled = (seq + 1) * p / 1000 > seq * p / 1000;
        TraceContext {
            id,
            head_sampled,
            trace: Some(Arc::new(ActiveTrace {
                origin: Instant::now(),
                next_id: AtomicU32::new(1),
                spans: Mutex::new(Vec::with_capacity(16)),
            })),
            collector: Some(Arc::clone(inner)),
        }
    }

    /// The kept traces, oldest first (a snapshot; the ring keeps
    /// evolving).
    pub fn traces(&self) -> Vec<CompletedTrace> {
        match &self.inner {
            Some(inner) => inner
                .ring
                .lock()
                .expect("trace ring poisoned")
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Looks up one kept trace by id.
    pub fn trace(&self, id: TraceId) -> Option<CompletedTrace> {
        let inner = self.inner.as_ref()?;
        inner
            .ring
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .find(|t| t.id == id)
            .cloned()
    }

    /// Number of traces currently kept.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.ring.lock().expect("trace ring poisoned").len())
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.capacity)
    }

    /// The slow-request threshold in milliseconds (0 = rule off).
    pub fn slow_ms(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.slow_ms)
    }
}

/// The verdicts [`TraceContext::finish`] hands back, for response
/// rendering and the slow-request log line.
#[derive(Clone, Copy, Debug)]
pub struct TraceReceipt {
    /// The trace id to echo in the response.
    pub id: TraceId,
    /// End-to-end duration in milliseconds (0.0 when disabled).
    pub duration_ms: f64,
    /// The final status the trace was filed under.
    pub status: SpanStatus,
    /// Whether the trace crossed the slow threshold (the caller should
    /// emit its slow-request log line iff this is set).
    pub slow: bool,
    /// Whether the trace landed in the ring buffer (and is therefore
    /// visible to the debug endpoints).
    pub kept: bool,
}

/// One request's tracing handle: mints child spans and, at the end,
/// files the trace. Detached contexts (disabled collector) still carry
/// a unique [`TraceId`].
#[derive(Debug)]
pub struct TraceContext {
    id: TraceId,
    head_sampled: bool,
    trace: Option<Arc<ActiveTrace>>,
    collector: Option<Arc<CollectorInner>>,
}

impl TraceContext {
    /// This trace's id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Whether spans are actually recorded.
    pub fn is_recording(&self) -> bool {
        self.trace.is_some()
    }

    /// Opens a root-level span (parent `None`). The first one opened is
    /// the root (id 1); a request has exactly one.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.open(name, None)
    }

    /// Opens a span under `parent` (a [`SpanGuard::id`]).
    pub fn child_span(&self, name: &'static str, parent: u32) -> SpanGuard {
        self.open(name, Some(parent))
    }

    fn open(&self, name: &'static str, parent: Option<u32>) -> SpanGuard {
        let Some(trace) = &self.trace else {
            return SpanGuard::detached();
        };
        let id = trace.next_id.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            trace: Some(Arc::clone(trace)),
            id,
            parent,
            name,
            start_us: trace.tick_us(),
            status: SpanStatus::Ok,
            attrs: Vec::new(),
        }
    }

    /// Records an already-over interval as a span — for instants (a
    /// breaker short-circuit) and retroactive measurements (queue wait).
    pub fn record_span(
        &self,
        name: &'static str,
        parent: Option<u32>,
        start_us: u64,
        end_us: u64,
        status: SpanStatus,
        attrs: Vec<(&'static str, String)>,
    ) {
        let Some(trace) = &self.trace else { return };
        let id = trace.next_id.fetch_add(1, Ordering::Relaxed);
        trace.push(Span {
            id,
            parent,
            name,
            start_us,
            end_us: end_us.max(start_us),
            status,
            attrs,
        });
    }

    /// The current tick in µs since the trace origin (0 when detached).
    pub fn tick_us(&self) -> u64 {
        self.trace.as_ref().map_or(0, |t| t.tick_us())
    }

    /// Finishes the trace under `status`: applies the head-sample and
    /// tail-keep rules, files the trace into the ring (evicting the
    /// oldest when full) and updates the `arp_trace_*` counters. Spans
    /// recorded by stragglers after this point are silently lost — the
    /// trace is already filed.
    pub fn finish(self, status: SpanStatus) -> TraceReceipt {
        let (Some(trace), Some(collector)) = (&self.trace, &self.collector) else {
            return TraceReceipt {
                id: self.id,
                duration_ms: 0.0,
                status,
                slow: false,
                kept: false,
            };
        };
        let duration_ms = trace.origin.elapsed().as_secs_f64() * 1000.0;
        let mut spans = std::mem::take(&mut *trace.spans.lock().expect("trace poisoned"));
        // An abandoned lane may record its span from a worker thread in
        // the instant between the root guard ending and the trace being
        // filed; extend the root to cover such stragglers so the filed
        // tree stays well-nested.
        if let Some(max_end) = spans.iter().map(|s| s.end_us).max() {
            if let Some(root) = spans.iter_mut().find(|s| s.parent.is_none()) {
                root.end_us = root.end_us.max(max_end);
            }
        }
        collector.spans_total.add(spans.len() as u64);
        let slow = collector.slow_ms > 0 && duration_ms >= collector.slow_ms as f64;
        if slow {
            collector.slow_total.inc();
        }
        let kept = self.head_sampled || slow || status != SpanStatus::Ok;
        if kept {
            collector.sampled_total.inc();
            let completed = CompletedTrace {
                id: self.id,
                duration_ms,
                status,
                head_sampled: self.head_sampled,
                slow,
                spans,
            };
            let mut ring = collector.ring.lock().expect("trace ring poisoned");
            ring.push_back(completed);
            while ring.len() > collector.capacity {
                ring.pop_front();
                collector.dropped_total.inc();
            }
        }
        TraceReceipt {
            id: self.id,
            duration_ms,
            status,
            slow,
            kept,
        }
    }
}

/// An open span. Accumulates attributes locally and records itself into
/// the trace exactly once — on [`SpanGuard::end`] or drop. `Send`, so a
/// lane guard travels to the worker thread that runs the lane.
#[derive(Debug)]
pub struct SpanGuard {
    trace: Option<Arc<ActiveTrace>>,
    id: u32,
    parent: Option<u32>,
    name: &'static str,
    start_us: u64,
    status: SpanStatus,
    attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    fn detached() -> SpanGuard {
        SpanGuard {
            trace: None,
            id: 0,
            parent: None,
            name: "",
            start_us: 0,
            status: SpanStatus::Ok,
            attrs: Vec::new(),
        }
    }

    /// This span's id (0 when detached), for parenting children.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Whether attributes are worth formatting (guard hot paths with
    /// this before building a `String`).
    pub fn is_recording(&self) -> bool {
        self.trace.is_some()
    }

    /// Stamps one `key=value` attribute (no-op when detached).
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        if self.trace.is_some() {
            self.attrs.push((key, value.into()));
        }
    }

    /// Stamps an integer attribute without allocating when detached.
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if self.trace.is_some() {
            self.attrs.push((key, value.to_string()));
        }
    }

    /// Sets the status the span will be recorded with.
    pub fn set_status(&mut self, status: SpanStatus) {
        self.status = status;
    }

    /// µs elapsed since this span started (0 when detached).
    pub fn elapsed_us(&self) -> u64 {
        self.trace
            .as_ref()
            .map_or(0, |t| t.tick_us().saturating_sub(self.start_us))
    }

    /// This span's start tick (µs since the trace origin).
    pub fn start_us(&self) -> u64 {
        self.start_us
    }

    /// Opens a child of this span.
    pub fn child(&self, name: &'static str) -> SpanGuard {
        let Some(trace) = &self.trace else {
            return SpanGuard::detached();
        };
        let id = trace.next_id.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            trace: Some(Arc::clone(trace)),
            id,
            parent: Some(self.id),
            name,
            start_us: trace.tick_us(),
            status: SpanStatus::Ok,
            attrs: Vec::new(),
        }
    }

    /// Records an already-over interval as a child of this span (e.g.
    /// the queue wait, measured retroactively when the lane starts).
    pub fn record_child(
        &self,
        name: &'static str,
        start_us: u64,
        end_us: u64,
        status: SpanStatus,
        attrs: Vec<(&'static str, String)>,
    ) {
        let Some(trace) = &self.trace else { return };
        let id = trace.next_id.fetch_add(1, Ordering::Relaxed);
        trace.push(Span {
            id,
            parent: Some(self.id),
            name,
            start_us,
            end_us: end_us.max(start_us),
            status,
            attrs,
        });
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(trace) = self.trace.take() else {
            return;
        };
        trace.push(Span {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_us: self.start_us,
            end_us: trace.tick_us().max(self.start_us),
            status: self.status,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector(sample: f64, buffer: usize, slow_ms: u64) -> (SpanCollector, Registry) {
        let registry = Registry::new();
        let c = SpanCollector::new(
            &TraceConfig {
                enabled: true,
                sample,
                buffer,
                slow_ms,
            },
            &registry,
        );
        (c, registry)
    }

    #[test]
    fn trace_ids_are_unique_and_round_trip() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
        let text = a.to_string();
        assert_eq!(text.len(), 16);
        assert_eq!(TraceId::parse(&text), Some(a));
        assert_eq!(TraceId::parse("nope"), None);
        assert_eq!(TraceId::parse(""), None);
    }

    #[test]
    fn spans_nest_and_attributes_stick() {
        let (c, registry) = collector(1.0, 8, 0);
        let ctx = c.start_trace();
        let id = ctx.id();
        let mut root = ctx.span("request");
        root.attr("city", "melbourne");
        {
            let mut child = ctx.child_span("admission", root.id());
            child.attr_u64("inflight", 3);
        }
        let lane = root.child("lane");
        lane.record_child(
            "queue",
            lane.start_us(),
            lane.start_us(),
            SpanStatus::Ok,
            vec![],
        );
        drop(lane);
        drop(root);
        let receipt = ctx.finish(SpanStatus::Ok);
        assert_eq!(receipt.id, id);
        assert!(receipt.kept, "sample 1.0 keeps everything");
        let t = c.trace(id).expect("kept trace is retrievable");
        assert!(t.well_nested(), "{:?}", t.spans);
        assert_eq!(t.root().unwrap().attr("city"), Some("melbourne"));
        assert_eq!(t.span("admission").unwrap().attr("inflight"), Some("3"));
        assert!(t.span("queue").is_some());
        assert_eq!(registry.counter_value("arp_trace_spans_total", &[]), 4);
        assert_eq!(registry.counter_value("arp_trace_sampled_total", &[]), 1);
    }

    #[test]
    fn head_sampling_keeps_an_even_exact_fraction() {
        let (c, _registry) = collector(0.1, 1024, 0);
        let mut kept = 0;
        for _ in 0..100 {
            let ctx = c.start_trace();
            ctx.span("request").end();
            if ctx.finish(SpanStatus::Ok).kept {
                kept += 1;
            }
        }
        assert_eq!(kept, 10, "0.1 sampling keeps exactly 10 of 100");
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn tail_rules_keep_unhealthy_traces_despite_zero_sampling() {
        let (c, registry) = collector(0.0, 16, 0);
        for status in [
            SpanStatus::Ok,
            SpanStatus::Degraded,
            SpanStatus::Truncated,
            SpanStatus::Failed,
        ] {
            let ctx = c.start_trace();
            ctx.span("request").end();
            let receipt = ctx.finish(status);
            assert_eq!(
                receipt.kept,
                status != SpanStatus::Ok,
                "tail rule for {status:?}"
            );
        }
        assert_eq!(c.len(), 3);
        assert_eq!(registry.counter_value("arp_trace_sampled_total", &[]), 3);
    }

    #[test]
    fn slow_traces_are_kept_and_counted() {
        let (c, registry) = collector(0.0, 16, 1);
        let ctx = c.start_trace();
        ctx.span("request").end();
        std::thread::sleep(std::time::Duration::from_millis(3));
        let receipt = ctx.finish(SpanStatus::Ok);
        assert!(receipt.slow);
        assert!(receipt.kept);
        assert_eq!(
            registry.counter_value("arp_trace_slow_requests_total", &[]),
            1
        );
    }

    #[test]
    fn ring_eviction_counts_each_drop() {
        let (c, registry) = collector(1.0, 3, 0);
        let mut ids = Vec::new();
        for _ in 0..5 {
            let ctx = c.start_trace();
            ids.push(ctx.id());
            ctx.finish(SpanStatus::Ok);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(registry.counter_value("arp_trace_dropped_total", &[]), 2);
        assert!(c.trace(ids[0]).is_none(), "oldest evicted");
        assert!(c.trace(ids[4]).is_some(), "newest kept");
    }

    #[test]
    fn disabled_collector_still_mints_unique_ids() {
        let c = SpanCollector::disabled();
        assert!(!c.is_enabled());
        let a = c.start_trace();
        let b = c.start_trace();
        assert_ne!(a.id(), b.id());
        assert!(!a.is_recording());
        let mut span = a.span("request");
        span.attr("ignored", "x");
        assert!(!span.is_recording());
        drop(span);
        let receipt = a.finish(SpanStatus::Failed);
        assert!(!receipt.kept);
        assert_eq!(c.len(), 0);
        b.finish(SpanStatus::Ok);
    }

    #[test]
    fn well_nested_rejects_malformed_trees() {
        let base = Span {
            id: 1,
            parent: None,
            name: "request",
            start_us: 0,
            end_us: 100,
            status: SpanStatus::Ok,
            attrs: Vec::new(),
        };
        let trace = |spans: Vec<Span>| CompletedTrace {
            id: TraceId(1),
            duration_ms: 0.1,
            status: SpanStatus::Ok,
            head_sampled: true,
            slow: false,
            spans,
        };
        // A child escaping its parent's interval.
        let escaped = Span {
            id: 2,
            parent: Some(1),
            end_us: 150,
            ..base.clone()
        };
        assert!(!trace(vec![base.clone(), escaped]).well_nested());
        // A dangling parent link.
        let dangling = Span {
            id: 2,
            parent: Some(7),
            ..base.clone()
        };
        assert!(!trace(vec![base.clone(), dangling]).well_nested());
        // Two roots.
        let second_root = Span {
            id: 2,
            ..base.clone()
        };
        assert!(!trace(vec![base.clone(), second_root]).well_nested());
        // The healthy shape passes.
        let child = Span {
            id: 2,
            parent: Some(1),
            start_us: 10,
            end_us: 90,
            ..base.clone()
        };
        assert!(trace(vec![base, child]).well_nested());
    }
}
