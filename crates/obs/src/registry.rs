//! The metric registry: named families, labeled series, snapshots.
//!
//! A [`Registry`] is a cheap cloneable handle; clones share the same
//! metric store. There is deliberately no global/default registry — every
//! instrumented component receives its registry explicitly, so tests and
//! parallel experiments never share state by accident.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64};
use std::sync::{Arc, Mutex};

use crate::instruments::{Counter, Gauge, Histogram, HistogramCore};

/// What kind of metric a family is (drives the `# TYPE` line).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// Per-family metadata: help text and kind, shared by all label series.
#[derive(Clone, Debug)]
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
}

/// One registered series cell.
#[derive(Clone, Debug)]
pub(crate) enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

/// Sorted `(key, value)` label pairs identifying a series within a family.
pub(crate) type LabelSet = Vec<(String, String)>;

#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub(crate) families: Mutex<BTreeMap<String, Family>>,
    pub(crate) series: Mutex<BTreeMap<(String, LabelSet), Cell>>,
}

/// A global-free handle to a metric store.
///
/// Cloning shares the store; [`Registry::disabled()`] (also the `Default`)
/// is a no-op handle whose instruments record nothing, so instrumentation
/// can be threaded unconditionally and switched on per call site.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

/// One rendered series in a [`Registry::samples`] snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Family name, e.g. `arp_search_settled_nodes_total`.
    pub name: String,
    /// Sorted label pairs, e.g. `[("technique", "penalty")]`.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: SampleValue,
}

/// The value of a [`Sample`].
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    /// Monotone counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state: total count, sum of observations, and cumulative
    /// `(upper_bound, count)` buckets ending with `+Inf`.
    Histogram {
        /// Total number of observations.
        count: u64,
        /// Sum of all observed values.
        sum: f64,
        /// Cumulative buckets, last entry has bound `+Inf`.
        buckets: Vec<(f64, u64)>,
    },
}

impl Registry {
    /// An enabled registry with an empty store.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A disabled registry: hands out no-op instruments, renders nothing.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn normalize(labels: &[(&str, &str)]) -> LabelSet {
        let mut set: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        set.sort();
        set
    }

    /// Registers the family (first writer wins on help text) and returns
    /// the cell for `(name, labels)`, creating it with `make` if new.
    /// Returns `None` when the key already exists with a different kind —
    /// a programming error surfaced by `debug_assert` and, in release, by
    /// handing back a detached instrument.
    fn resolve(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Cell,
    ) -> Option<Cell> {
        let inner = self.inner.as_ref()?;
        {
            let mut families = inner.families.lock().expect("obs families poisoned");
            let family = families.entry(name.to_string()).or_insert_with(|| Family {
                help: help.to_string(),
                kind,
            });
            if family.kind != kind {
                debug_assert!(false, "metric {name:?} re-registered with a different kind");
                return None;
            }
        }
        let key = (name.to_string(), Self::normalize(labels));
        let mut series = inner.series.lock().expect("obs series poisoned");
        Some(series.entry(key).or_insert_with(make).clone())
    }

    /// A counter for `(name, labels)`; repeated calls share the cell.
    ///
    /// By convention counter names end in `_total`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let cell = self.resolve(name, help, labels, MetricKind::Counter, || {
            Cell::Counter(Arc::new(AtomicU64::new(0)))
        });
        match cell {
            Some(Cell::Counter(cell)) => Counter { cell: Some(cell) },
            _ => Counter::default(),
        }
    }

    /// A gauge for `(name, labels)`; repeated calls share the cell.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.resolve(name, help, labels, MetricKind::Gauge, || {
            Cell::Gauge(Arc::new(AtomicI64::new(0)))
        });
        match cell {
            Some(Cell::Gauge(cell)) => Gauge { cell: Some(cell) },
            _ => Gauge::default(),
        }
    }

    /// A histogram for `(name, labels)` with the given finite bucket upper
    /// bounds (`+Inf` is implicit; bounds are sorted and deduplicated).
    /// The first registration of a series fixes its buckets.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let cell = self.resolve(name, help, labels, MetricKind::Histogram, || {
            Cell::Histogram(Arc::new(HistogramCore::new(bounds)))
        });
        match cell {
            Some(Cell::Histogram(core)) => Histogram { core: Some(core) },
            _ => Histogram::default(),
        }
    }

    /// A point-in-time snapshot of every registered series, sorted by
    /// `(name, labels)` — the programmatic twin of
    /// [`Registry::render_prometheus`], used by `repro_perf` to print its
    /// per-technique tables.
    pub fn samples(&self) -> Vec<Sample> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let series = inner.series.lock().expect("obs series poisoned");
        series
            .iter()
            .map(|((name, labels), cell)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: match cell {
                    Cell::Counter(c) => {
                        SampleValue::Counter(c.load(std::sync::atomic::Ordering::Relaxed))
                    }
                    Cell::Gauge(g) => {
                        SampleValue::Gauge(g.load(std::sync::atomic::Ordering::Relaxed))
                    }
                    Cell::Histogram(h) => SampleValue::Histogram {
                        count: h.count.load(std::sync::atomic::Ordering::Relaxed),
                        sum: h.sum(),
                        buckets: h.cumulative_buckets(),
                    },
                },
            })
            .collect()
    }

    /// Convenience: the value of the counter `(name, labels)`, or 0.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let Some(inner) = &self.inner else {
            return 0;
        };
        let key = (name.to_string(), Self::normalize(labels));
        let series = inner.series.lock().expect("obs series poisoned");
        match series.get(&key) {
            Some(Cell::Counter(c)) => c.load(std::sync::atomic::Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Renders the whole store in the Prometheus text exposition format
    /// (see [`crate::render`]). A disabled registry renders `""`.
    pub fn render_prometheus(&self) -> String {
        crate::render::prometheus(self)
    }

    pub(crate) fn inner(&self) -> Option<&Arc<Inner>> {
        self.inner.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        reg.counter("a_total", "", &[]).inc();
        assert!(reg.samples().is_empty());
        assert_eq!(reg.counter_value("a_total", &[]), 0);
        // Default is the disabled registry.
        assert!(!Registry::default().is_enabled());
    }

    #[test]
    fn clones_share_the_store() {
        let reg = Registry::new();
        let clone = reg.clone();
        reg.counter("shared_total", "", &[("l", "x")]).add(3);
        assert_eq!(clone.counter_value("shared_total", &[("l", "x")]), 3);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.counter("m_total", "", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("m_total", "", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.counter_value("m_total", &[("b", "2"), ("a", "1")]), 2);
        assert_eq!(reg.samples().len(), 1);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let reg = Registry::new();
        reg.counter("m_total", "", &[("t", "x")]).inc();
        reg.counter("m_total", "", &[("t", "y")]).add(2);
        let samples = reg.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].value, SampleValue::Counter(1));
        assert_eq!(samples[1].value, SampleValue::Counter(2));
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn kind_mismatch_yields_detached_handle() {
        let reg = Registry::new();
        reg.counter("m_total", "", &[]).inc();
        let g = reg.gauge("m_total", "", &[]);
        g.set(9);
        assert_eq!(g.get(), 0);
        assert_eq!(reg.counter_value("m_total", &[]), 1);
    }

    #[test]
    fn samples_include_histograms() {
        let reg = Registry::new();
        let h = reg.histogram("h_ms", "help", &[], &[10.0]);
        h.observe(3.0);
        h.observe(30.0);
        let samples = reg.samples();
        assert_eq!(samples.len(), 1);
        let SampleValue::Histogram {
            count,
            sum,
            buckets,
        } = &samples[0].value
        else {
            panic!("expected histogram");
        };
        assert_eq!(*count, 2);
        assert!((sum - 33.0).abs() < 1e-6);
        assert_eq!(buckets[0], (10.0, 1));
        assert_eq!(buckets[1].1, 2);
    }
}
