//! The recording instruments: counters, gauges, histograms and timers.
//!
//! Each instrument is a cheap cloneable handle around an `Option<Arc<_>>`:
//! `Some` when obtained from an enabled [`crate::Registry`], `None` when
//! the registry is disabled (every operation is then a no-op). All
//! recording uses relaxed atomics — the instruments are monotone
//! accumulators read at scrape time, not synchronization primitives.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fixed-point scale used to accumulate histogram sums in an integer
/// atomic: 1 unit = 1e-6 of the observed value (for millisecond
/// observations this is a nanosecond).
const SUM_SCALE: f64 = 1_000_000.0;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell. The `Default` handle is detached
/// (no-op), matching what [`crate::Registry::disabled()`] hands out.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge: a value that can go up and down (queue depths, stored rows).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Shared state of a histogram: fixed bucket upper bounds plus atomic
/// per-bucket counts, total count and fixed-point sum.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Finite bucket upper bounds, ascending; `+Inf` is implicit.
    pub(crate) bounds: Vec<f64>,
    /// Non-cumulative per-bound counts, one per entry of `bounds`.
    pub(crate) buckets: Vec<AtomicU64>,
    /// Observations above the last finite bound (the `+Inf` bucket).
    pub(crate) overflow: AtomicU64,
    /// Total number of observations.
    pub(crate) count: AtomicU64,
    /// Sum of observed values in fixed-point [`SUM_SCALE`] units.
    pub(crate) sum_fixed: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[f64]) -> HistogramCore {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let buckets = bounds.iter().map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds,
            buckets,
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_fixed: AtomicU64::new(0),
        }
    }

    pub(crate) fn sum(&self) -> f64 {
        self.sum_fixed.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// `(upper_bound, cumulative_count)` pairs, ending with `(+Inf, count)`.
    pub(crate) fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        for (bound, bucket) in self.bounds.iter().zip(&self.buckets) {
            cum += bucket.load(Ordering::Relaxed);
            out.push((*bound, cum));
        }
        cum += self.overflow.load(Ordering::Relaxed);
        out.push((f64::INFINITY, cum));
        out
    }
}

/// A fixed-bucket histogram, typically of latencies in milliseconds.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let Some(core) = &self.core else {
            return;
        };
        match core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .map(|i| &core.buckets[i])
        {
            Some(bucket) => bucket.fetch_add(1, Ordering::Relaxed),
            None => core.overflow.fetch_add(1, Ordering::Relaxed),
        };
        core.count.fetch_add(1, Ordering::Relaxed);
        let fixed = (value.max(0.0) * SUM_SCALE).round() as u64;
        core.sum_fixed.fetch_add(fixed, Ordering::Relaxed);
    }

    /// Total number of observations (0 for a detached handle).
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all observed values (0.0 for a detached handle).
    pub fn sum(&self) -> f64 {
        self.core.as_ref().map_or(0.0, |c| c.sum())
    }

    /// Starts a span timer that records the elapsed wall-clock time, in
    /// milliseconds, into this histogram when dropped (or stopped).
    ///
    /// On a detached handle the timer never reads the clock, keeping the
    /// disabled path free of syscalls.
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: self.core.is_some().then(Instant::now),
        }
    }
}

/// A span timer for stage-level latency breakdowns.
///
/// Obtained from [`Histogram::start_timer`]; records elapsed milliseconds
/// into the histogram on drop. Use [`Timer::stop_ms`] to record early and
/// read the measurement.
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Stops the span now, records it, and returns the elapsed
    /// milliseconds (0.0 if the timer was detached).
    pub fn stop_ms(mut self) -> f64 {
        self.record()
    }

    /// Discards the span without recording (e.g. on an error path that
    /// should not pollute the latency distribution).
    pub fn discard(mut self) {
        self.start = None;
    }

    fn record(&mut self) -> f64 {
        let Some(start) = self.start.take() else {
            return 0.0;
        };
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        self.hist.observe(ms);
        ms
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn detached_instruments_are_noops() {
        let c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 0);
        let h = Histogram::default();
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.start_timer().stop_ms(), 0.0);
    }

    #[test]
    fn counter_and_gauge_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("c_total", "", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // A second resolution of the same key shares the cell.
        assert_eq!(reg.counter("c_total", "", &[]).get(), 5);

        let g = reg.gauge("g", "", &[]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("h_ms", "", &[], &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.9, 5.0, 50.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5056.4).abs() < 1e-6);
        let core = h.core.as_ref().unwrap();
        let cum = core.cumulative_buckets();
        assert_eq!(cum.len(), 4);
        assert_eq!(cum[0], (1.0, 2));
        assert_eq!(cum[1], (10.0, 3));
        assert_eq!(cum[2], (100.0, 4));
        assert_eq!(cum[3].1, 5); // +Inf
    }

    #[test]
    fn unsorted_bounds_are_normalized() {
        let reg = Registry::new();
        let h = reg.histogram("h2_ms", "", &[], &[100.0, 1.0, f64::INFINITY, 1.0]);
        let core = h.core.as_ref().unwrap();
        assert_eq!(core.bounds, vec![1.0, 100.0]);
    }

    #[test]
    fn timer_records_into_histogram() {
        let reg = Registry::new();
        let h = reg.histogram("t_ms", "", &[], &[1e9]);
        let ms = h.start_timer().stop_ms();
        assert!(ms >= 0.0);
        assert_eq!(h.count(), 1);
        {
            let _t = h.start_timer(); // records on drop
        }
        assert_eq!(h.count(), 2);
        h.start_timer().discard();
        assert_eq!(h.count(), 2);
    }
}
