//! The recording instruments: counters, gauges, histograms and timers.
//!
//! Each instrument is a cheap cloneable handle around an `Option<Arc<_>>`:
//! `Some` when obtained from an enabled [`crate::Registry`], `None` when
//! the registry is disabled (every operation is then a no-op). All
//! recording uses relaxed atomics — the instruments are monotone
//! accumulators read at scrape time, not synchronization primitives.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fixed-point scale used to accumulate histogram sums in an integer
/// atomic: 1 unit = 1e-6 of the observed value (for millisecond
/// observations this is a nanosecond).
const SUM_SCALE: f64 = 1_000_000.0;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell. The `Default` handle is detached
/// (no-op), matching what [`crate::Registry::disabled()`] hands out.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge: a value that can go up and down (queue depths, stored rows).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a detached handle).
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Shared state of a histogram: fixed bucket upper bounds plus atomic
/// per-bucket counts, total count and fixed-point sum.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Finite bucket upper bounds, ascending; `+Inf` is implicit.
    pub(crate) bounds: Vec<f64>,
    /// Non-cumulative per-bound counts, one per entry of `bounds`.
    pub(crate) buckets: Vec<AtomicU64>,
    /// Observations above the last finite bound (the `+Inf` bucket).
    pub(crate) overflow: AtomicU64,
    /// Total number of observations.
    pub(crate) count: AtomicU64,
    /// Sum of observed values in fixed-point [`SUM_SCALE`] units.
    pub(crate) sum_fixed: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[f64]) -> HistogramCore {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let buckets = bounds.iter().map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds,
            buckets,
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_fixed: AtomicU64::new(0),
        }
    }

    pub(crate) fn sum(&self) -> f64 {
        self.sum_fixed.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// `(upper_bound, cumulative_count)` pairs, ending with `(+Inf, count)`.
    pub(crate) fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        for (bound, bucket) in self.bounds.iter().zip(&self.buckets) {
            cum += bucket.load(Ordering::Relaxed);
            out.push((*bound, cum));
        }
        cum += self.overflow.load(Ordering::Relaxed);
        out.push((f64::INFINITY, cum));
        out
    }
}

/// A fixed-bucket histogram, typically of latencies in milliseconds.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let Some(core) = &self.core else {
            return;
        };
        match core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .map(|i| &core.buckets[i])
        {
            Some(bucket) => bucket.fetch_add(1, Ordering::Relaxed),
            None => core.overflow.fetch_add(1, Ordering::Relaxed),
        };
        core.count.fetch_add(1, Ordering::Relaxed);
        let fixed = (value.max(0.0) * SUM_SCALE).round() as u64;
        core.sum_fixed.fetch_add(fixed, Ordering::Relaxed);
    }

    /// Total number of observations (0 for a detached handle).
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all observed values (0.0 for a detached handle).
    pub fn sum(&self) -> f64 {
        self.core.as_ref().map_or(0.0, |c| c.sum())
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the bucket
    /// counts, Prometheus `histogram_quantile`-style: find the bucket
    /// the target rank falls in, then interpolate linearly inside it
    /// (the first bucket interpolates from 0, the `+Inf` bucket clamps
    /// to the last finite bound). Returns 0.0 for an empty or detached
    /// histogram.
    ///
    /// The estimate is only as sharp as the bounds: with the default
    /// sub-millisecond buckets, 0.2 ms and 0.9 ms observations resolve
    /// to clearly different estimates instead of collapsing into one
    /// bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        let Some(core) = &self.core else {
            return 0.0;
        };
        let cumulative = core.cumulative_buckets();
        let total = cumulative.last().map_or(0, |&(_, c)| c);
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut lower_bound = 0.0;
        let mut lower_count = 0u64;
        for &(bound, count) in &cumulative {
            if (count as f64) >= rank {
                if bound.is_infinite() {
                    // Above every finite bound: the honest answer is
                    // "at least the last bound".
                    return lower_bound;
                }
                let in_bucket = (count - lower_count) as f64;
                let position = (rank - lower_count as f64) / in_bucket;
                return lower_bound + (bound - lower_bound) * position;
            }
            lower_bound = bound;
            lower_count = count;
        }
        lower_bound
    }

    /// Starts a span timer that records the elapsed wall-clock time, in
    /// milliseconds, into this histogram when dropped (or stopped).
    ///
    /// On a detached handle the timer never reads the clock, keeping the
    /// disabled path free of syscalls.
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: self.core.is_some().then(Instant::now),
        }
    }
}

/// A span timer for stage-level latency breakdowns.
///
/// Obtained from [`Histogram::start_timer`]; records elapsed milliseconds
/// into the histogram on drop. Use [`Timer::stop_ms`] to record early and
/// read the measurement.
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Stops the span now, records it, and returns the elapsed
    /// milliseconds (0.0 if the timer was detached).
    pub fn stop_ms(mut self) -> f64 {
        self.record()
    }

    /// Discards the span without recording (e.g. on an error path that
    /// should not pollute the latency distribution).
    pub fn discard(mut self) {
        self.start = None;
    }

    fn record(&mut self) -> f64 {
        let Some(start) = self.start.take() else {
            return 0.0;
        };
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        self.hist.observe(ms);
        ms
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn detached_instruments_are_noops() {
        let c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 0);
        let h = Histogram::default();
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.start_timer().stop_ms(), 0.0);
    }

    #[test]
    fn counter_and_gauge_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("c_total", "", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // A second resolution of the same key shares the cell.
        assert_eq!(reg.counter("c_total", "", &[]).get(), 5);

        let g = reg.gauge("g", "", &[]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("h_ms", "", &[], &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.9, 5.0, 50.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5056.4).abs() < 1e-6);
        let core = h.core.as_ref().unwrap();
        let cum = core.cumulative_buckets();
        assert_eq!(cum.len(), 4);
        assert_eq!(cum[0], (1.0, 2));
        assert_eq!(cum[1], (10.0, 3));
        assert_eq!(cum[2], (100.0, 4));
        assert_eq!(cum[3].1, 5); // +Inf
    }

    #[test]
    fn unsorted_bounds_are_normalized() {
        let reg = Registry::new();
        let h = reg.histogram("h2_ms", "", &[], &[100.0, 1.0, f64::INFINITY, 1.0]);
        let core = h.core.as_ref().unwrap();
        assert_eq!(core.bounds, vec![1.0, 100.0]);
    }

    /// Regression for sub-millisecond bucket coverage: with the default
    /// bounds, quantile estimation must distinguish a 0.2 ms population
    /// from a 0.9 ms one. Before the sub-ms bounds both populations
    /// collapsed into one bucket and came back with the same estimate.
    #[test]
    fn default_buckets_resolve_sub_millisecond_quantiles() {
        let reg = Registry::new();
        let fast = reg.histogram("fast_ms", "", &[], &crate::DEFAULT_LATENCY_BUCKETS_MS);
        let slow = reg.histogram("slow_ms2", "", &[], &crate::DEFAULT_LATENCY_BUCKETS_MS);
        for _ in 0..100 {
            fast.observe(0.2);
            slow.observe(0.9);
        }
        let fast_p50 = fast.quantile(0.5);
        let slow_p50 = slow.quantile(0.5);
        assert!(
            (fast_p50 - 0.2).abs() < 0.08,
            "0.2 ms population estimated at {fast_p50} ms"
        );
        assert!(
            (slow_p50 - 0.9).abs() < 0.16,
            "0.9 ms population estimated at {slow_p50} ms"
        );
        assert!(
            slow_p50 - fast_p50 > 0.4,
            "sub-ms populations must be distinguishable: {fast_p50} vs {slow_p50}"
        );
    }

    #[test]
    fn quantile_interpolates_and_handles_edges() {
        let reg = Registry::new();
        let h = reg.histogram("q_ms", "", &[], &[1.0, 10.0, 100.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for v in [0.5, 5.0, 5.0, 50.0] {
            h.observe(v);
        }
        // Rank 2 of 4 falls at the top of the (1, 10] bucket's first of
        // two observations: 1 + 9 * (2-1)/2 = 5.5.
        assert!((h.quantile(0.5) - 5.5).abs() < 1e-9);
        // q=0 clamps to rank 1 (the first bucket, interpolated from 0).
        assert!(h.quantile(0.0) <= 1.0);
        // Everything above the last finite bound clamps to it.
        h.observe(1e6);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(Histogram::default().quantile(0.5), 0.0, "detached");
    }

    #[test]
    fn timer_records_into_histogram() {
        let reg = Registry::new();
        let h = reg.histogram("t_ms", "", &[], &[1e9]);
        let ms = h.start_timer().stop_ms();
        assert!(ms >= 0.0);
        assert_eq!(h.count(), 1);
        {
            let _t = h.start_timer(); // records on drop
        }
        assert_eq!(h.count(), 2);
        h.start_timer().discard();
        assert_eq!(h.count(), 2);
    }
}
