//! Prometheus text exposition rendering (version 0.0.4), by pure string
//! formatting — no serialization dependency.
//!
//! Families are emitted in name order, each with its `# HELP` / `# TYPE`
//! header followed by all label series. Histograms expand into cumulative
//! `_bucket{le=…}` series plus `_sum` and `_count`, exactly as the
//! Prometheus client libraries do.

use std::fmt::Write as _;

use crate::registry::{Cell, LabelSet, MetricKind, Registry};

/// Escapes a `# HELP` text: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote and newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a label set (optionally with a trailing `le` pair) into
/// `{a="x",b="y"}`, or `""` when there are no labels at all.
fn format_labels(labels: &LabelSet, le: Option<f64>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(bound) = le {
        let text = if bound.is_infinite() {
            "+Inf".to_string()
        } else {
            format!("{bound}")
        };
        pairs.push(format!("le=\"{text}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders every family and series of `registry` in the Prometheus text
/// format. A disabled registry renders the empty string.
pub fn prometheus(registry: &Registry) -> String {
    let Some(inner) = registry.inner() else {
        return String::new();
    };
    let families = inner.families.lock().expect("obs families poisoned");
    let series = inner.series.lock().expect("obs series poisoned");

    let mut out = String::new();
    for (name, family) in families.iter() {
        let kind = match family.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        if !family.help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
        }
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for ((series_name, labels), cell) in series.range((name.clone(), LabelSet::new())..) {
            if series_name != name {
                break;
            }
            match cell {
                Cell::Counter(c) => {
                    let v = c.load(std::sync::atomic::Ordering::Relaxed);
                    let _ = writeln!(out, "{name}{} {v}", format_labels(labels, None));
                }
                Cell::Gauge(g) => {
                    let v = g.load(std::sync::atomic::Ordering::Relaxed);
                    let _ = writeln!(out, "{name}{} {v}", format_labels(labels, None));
                }
                Cell::Histogram(h) => {
                    for (bound, cum) in h.cumulative_buckets() {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            format_labels(labels, Some(bound))
                        );
                    }
                    let _ = writeln!(out, "{name}_sum{} {}", format_labels(labels, None), h.sum());
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        format_labels(labels, None),
                        h.count.load(std::sync::atomic::Ordering::Relaxed)
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_gauges() {
        let reg = Registry::new();
        reg.counter(
            "req_total",
            "Requests served.",
            &[("endpoint", "/api/route")],
        )
        .add(7);
        reg.gauge("rows", "Stored rows.", &[]).set(3);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP req_total Requests served.\n"));
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains("req_total{endpoint=\"/api/route\"} 7\n"));
        assert!(text.contains("# TYPE rows gauge\n"));
        assert!(text.contains("\nrows 3\n"));
    }

    #[test]
    fn renders_histogram_expansion() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ms", "Latency.", &[("t", "x")], &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(500.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_ms histogram\n"));
        assert!(text.contains("lat_ms_bucket{t=\"x\",le=\"1\"} 1\n"));
        assert!(text.contains("lat_ms_bucket{t=\"x\",le=\"10\"} 2\n"));
        assert!(text.contains("lat_ms_bucket{t=\"x\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ms_sum{t=\"x\"} 505.5\n"));
        assert!(text.contains("lat_ms_count{t=\"x\"} 3\n"));
    }

    #[test]
    fn every_line_is_comment_or_sample() {
        let reg = Registry::new();
        reg.counter("a_total", "help", &[("k", "v")]).inc();
        reg.histogram("b_ms", "h", &[], &[5.0]).observe(1.0);
        for line in reg.render_prometheus().lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
            } else {
                // `name{labels} value` or `name value`, value parseable.
                let (_, value) = line.rsplit_once(' ').expect("sample line");
                assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            }
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("e_total", "", &[("p", "a\"b\\c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains(r#"e_total{p="a\"b\\c\nd"} 1"#));
    }

    /// Inverts [`escape_label`]: the decoder a Prometheus scraper
    /// applies to a quoted label value.
    fn unescape_label(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    /// Round-trips hostile label values through render + a conforming
    /// scraper's unescape: every value must come back verbatim, and the
    /// rendered line must never contain a raw newline or unescaped
    /// quote (either would corrupt the whole exposition).
    #[test]
    fn hostile_label_values_round_trip() {
        let hostile = [
            "back\\slash",
            "quo\"te",
            "multi\nline",
            "a\"b\\c\nd",
            "trailing\\",
            "\\n is not a newline",
            "\"\"",
            "\\\\\"\n\\",
            "{weird={inner=\"x\"}}",
        ];
        for (i, value) in hostile.iter().enumerate() {
            let reg = Registry::new();
            let name = format!("rt_{i}_total");
            reg.counter(&name, "", &[("site", value)]).inc();
            let text = reg.render_prometheus();
            let line = text
                .lines()
                .find(|l| l.starts_with(&name) && !l.starts_with('#'))
                .unwrap_or_else(|| panic!("no sample line for {value:?}: {text}"));
            // The sample must stay on one line: `name{site="…"} 1`.
            let rest = line.strip_prefix(&format!("{name}{{site=\"")).unwrap();
            let escaped = rest
                .strip_suffix("\"} 1")
                .unwrap_or_else(|| panic!("sample line lost its shape for {value:?}: {line}"));
            // No unescaped quote may terminate the value early: every
            // `"` inside must be preceded by an odd run of backslashes.
            let mut backslashes = 0usize;
            for c in escaped.chars() {
                match c {
                    '\\' => backslashes += 1,
                    '"' => {
                        assert!(
                            backslashes % 2 == 1,
                            "unescaped quote inside value for {value:?}: {line}"
                        );
                        backslashes = 0;
                    }
                    _ => backslashes = 0,
                }
            }
            assert_eq!(
                unescape_label(escaped),
                *value,
                "value did not round-trip: {line}"
            );
        }
    }

    #[test]
    fn families_with_shared_prefix_do_not_bleed() {
        let reg = Registry::new();
        reg.counter("ab_total", "", &[]).inc();
        reg.counter("ab_total_more", "", &[]).add(2);
        let text = reg.render_prometheus();
        // The `ab_total` family section must contain only its own series.
        let section: Vec<&str> = text
            .lines()
            .skip_while(|l| *l != "# TYPE ab_total counter")
            .take_while(|l| !l.starts_with("# TYPE ab_total_more"))
            .collect();
        assert_eq!(section, vec!["# TYPE ab_total counter", "ab_total 1"]);
    }
}
