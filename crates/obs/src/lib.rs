#![deny(missing_docs)]
//! # arp-obs
//!
//! Dependency-free observability for the alternative-route-planning
//! workspace: atomic [`Counter`]s, [`Gauge`]s, fixed-bucket latency
//! [`Histogram`]s and a lightweight span [`Timer`], all owned by a
//! global-free [`Registry`] handle that renders the
//! [Prometheus text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! by pure string formatting.
//!
//! The layer is **opt-in**: a [`Registry::disabled()`] handle hands out
//! no-op instruments whose operations compile down to a branch on a
//! `None`, so un-instrumented call sites pay nothing measurable. An
//! enabled registry hands out handles backed by shared atomics; recording
//! is lock-free (the registry's interior mutex is touched only at
//! registration and render time).
//!
//! ```
//! use arp_obs::{Registry, DEFAULT_LATENCY_BUCKETS_MS};
//!
//! let registry = Registry::new();
//!
//! // Instruments are resolved once (cheap lock) and then recorded on
//! // freely (lock-free). Same (name, labels) -> same underlying cell.
//! let queries = registry.counter(
//!     "arp_search_queries_total",
//!     "Shortest-path queries answered.",
//!     &[("technique", "penalty")],
//! );
//! let latency = registry.histogram(
//!     "arp_technique_latency_ms",
//!     "Per-call technique latency in milliseconds.",
//!     &[("technique", "penalty")],
//!     &DEFAULT_LATENCY_BUCKETS_MS,
//! );
//!
//! {
//!     let _timer = latency.start_timer(); // records on drop
//!     queries.inc();
//! }
//!
//! let text = registry.render_prometheus();
//! assert!(text.contains("# TYPE arp_search_queries_total counter"));
//! assert!(text.contains(r#"arp_search_queries_total{technique="penalty"} 1"#));
//! assert!(text.contains(r#"arp_technique_latency_ms_bucket{technique="penalty",le="+Inf"} 1"#));
//!
//! // A disabled registry is free: handles work but record nothing.
//! let off = Registry::disabled();
//! off.counter("ignored_total", "", &[]).inc();
//! assert_eq!(off.render_prometheus(), "");
//! ```

pub mod instruments;
pub mod registry;
pub mod render;
pub mod trace;

pub use instruments::{Counter, Gauge, Histogram, Timer};
pub use registry::{Registry, Sample, SampleValue};
pub use trace::{
    CompletedTrace, Span, SpanCollector, SpanGuard, SpanStatus, TraceConfig, TraceContext, TraceId,
    TraceReceipt,
};

/// Default latency histogram bucket upper bounds, in **milliseconds**.
///
/// Spans sub-millisecond single searches up to multi-second cold
/// requests, with enough sub-millisecond resolution (0.025–0.75 ms) that
/// quantile estimation can tell a 0.2 ms hot-cache path from a 0.9 ms
/// one instead of flattening both into a single first bucket; an
/// implicit `+Inf` bucket is always appended by the histogram itself.
/// Documented in DESIGN.md §7 — change them there too.
pub const DEFAULT_LATENCY_BUCKETS_MS: [f64; 16] = [
    0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
    2500.0,
];
