//! Property tests for the trace/span invariants.
//!
//! The collector's contract: no matter how concurrent requests
//! interleave their span recording, every kept trace is a well-nested
//! tree (one root, resolvable parent links, children contained in their
//! parents, non-negative durations), and ring-buffer eviction under
//! overflow is counted in `arp_trace_dropped_total` exactly.

use std::sync::Arc;

use arp_obs::{Registry, SpanCollector, SpanStatus, TraceConfig};
use proptest::prelude::*;

fn collector(sample: f64, buffer: usize) -> (SpanCollector, Registry) {
    let registry = Registry::new();
    let c = SpanCollector::new(
        &TraceConfig {
            enabled: true,
            sample,
            buffer,
            slow_ms: 0,
        },
        &registry,
    );
    (c, registry)
}

proptest! {
    // Thread-spawning properties: fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of concurrent requests yields well-nested,
    /// parent-linked spans with non-negative durations. Each thread
    /// plays one request: a root, a fanned-out set of "lane" children
    /// (each with a retroactive "queue" grandchild, like the serving
    /// layer records), and a final "assemble" child.
    #[test]
    fn concurrent_requests_yield_well_nested_traces(
        threads in 1usize..6,
        lanes_per in 1usize..5,
        spin in 0u32..200,
    ) {
        let (c, _registry) = collector(1.0, 256);
        let collector = Arc::new(c);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let collector = Arc::clone(&collector);
                std::thread::spawn(move || {
                    let ctx = collector.start_trace();
                    let id = ctx.id();
                    let mut root = ctx.span("request");
                    root.attr_u64("thread", t as u64);
                    let mut lane_guards = Vec::new();
                    for lane in 0..lanes_per {
                        let mut g = ctx.child_span("lane", root.id());
                        g.attr_u64("lane", lane as u64);
                        lane_guards.push(g);
                    }
                    for g in lane_guards {
                        for _ in 0..spin {
                            std::hint::spin_loop();
                        }
                        g.record_child(
                            "queue",
                            g.start_us(),
                            g.start_us(),
                            SpanStatus::Ok,
                            Vec::new(),
                        );
                        drop(g);
                    }
                    ctx.child_span("assemble", root.id()).end();
                    drop(root);
                    ctx.finish(SpanStatus::Ok);
                    id
                })
            })
            .collect();
        let ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        for id in ids {
            let trace = collector.trace(id).expect("sample 1.0 keeps every trace");
            prop_assert!(trace.well_nested(), "malformed tree: {:?}", trace.spans);
            // Exactly the expected shape: root + lanes + queues + assemble.
            prop_assert_eq!(trace.spans.len(), 2 + 2 * lanes_per);
            for span in &trace.spans {
                prop_assert!(span.end_us >= span.start_us, "negative duration");
                if let Some(parent) = span.parent {
                    prop_assert!(
                        trace.spans.iter().any(|s| s.id == parent),
                        "dangling parent {parent}"
                    );
                }
            }
            prop_assert_eq!(trace.spans_named("lane").count(), lanes_per);
            prop_assert_eq!(trace.spans_named("queue").count(), lanes_per);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Overflowing the ring evicts exactly the surplus, and every
    /// eviction is counted in `arp_trace_dropped_total` — no more, no
    /// fewer. The survivors are precisely the newest `capacity` traces.
    #[test]
    fn ring_overflow_counts_drops_exactly(
        capacity in 1usize..10,
        total in 0usize..40,
    ) {
        let (c, registry) = collector(1.0, capacity);
        let mut ids = Vec::new();
        for _ in 0..total {
            let ctx = c.start_trace();
            ids.push(ctx.id());
            ctx.span("request").end();
            ctx.finish(SpanStatus::Ok);
        }
        let expected_dropped = total.saturating_sub(capacity);
        prop_assert_eq!(
            registry.counter_value("arp_trace_dropped_total", &[]),
            expected_dropped as u64
        );
        prop_assert_eq!(c.len(), total.min(capacity));
        prop_assert_eq!(
            registry.counter_value("arp_trace_sampled_total", &[]),
            total as u64
        );
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(
                c.trace(*id).is_some(),
                i >= expected_dropped,
                "wrong eviction order at {i}"
            );
        }
    }

    /// The sampler keeps an exact, evenly spread fraction: over any run
    /// length, the number of head-kept traces is `floor(n * rate)` ± 1,
    /// and with tail rules off nothing else is kept.
    #[test]
    fn head_sampler_is_exact(permille in 0u32..=1000, n in 1usize..300) {
        let rate = permille as f64 / 1000.0;
        let (c, _registry) = collector(rate, 4096);
        let mut kept = 0usize;
        for _ in 0..n {
            let ctx = c.start_trace();
            if ctx.finish(SpanStatus::Ok).kept {
                kept += 1;
            }
        }
        let expected = n * permille as usize / 1000;
        prop_assert!(
            kept == expected || kept == expected + 1,
            "kept {kept} of {n} at {rate}, expected ~{expected}"
        );
    }
}
