//! Property-based tests for the city generator: any sane spec must yield
//! a valid, strongly connected, routable network.

use arp_citygen::generator::generate_from_spec;
use arp_citygen::spec::{rel, ArterialSpec, CitySpec, FreewaySpec, GridSpec, Obstacle};
use arp_roadnet::geo::Point;
use arp_roadnet::scc::strongly_connected_components;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = CitySpec> {
    (
        8u32..24,
        0.0f64..0.35,
        0.0f64..0.10,
        0.0f64..0.12,
        0.0f64..0.5,
        any::<u64>(),
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(
            |(dim, irregularity, hole, missing, oneway, seed, with_freeway, with_river)| CitySpec {
                name: "propcity".into(),
                seed,
                center: Point::new(144.0, -37.0),
                grid: GridSpec {
                    cols: dim,
                    rows: dim,
                    spacing_m: 150.0,
                    irregularity,
                    hole_prob: hole,
                    missing_street_prob: missing,
                    oneway_fraction: oneway,
                    diagonal_prob: 0.03,
                },
                arterials: ArterialSpec {
                    row_every: 6,
                    col_every: 7,
                },
                freeways: if with_freeway {
                    vec![FreewaySpec {
                        waypoints: vec![rel(0.0, 0.4), rel(1.0, 0.6)],
                        node_spacing_m: 400.0,
                        ramp_every: 3,
                        closed: false,
                    }]
                } else {
                    vec![]
                },
                obstacles: if with_river {
                    vec![Obstacle {
                        polygon: vec![
                            rel(0.0, 0.45),
                            rel(1.0, 0.50),
                            rel(1.0, 0.56),
                            rel(0.0, 0.51),
                        ],
                        bridges: vec![
                            (rel(0.3, 0.44), rel(0.3, 0.57)),
                            (rel(0.7, 0.44), rel(0.7, 0.57)),
                        ],
                    }]
                } else {
                    vec![]
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_city_is_valid_and_connected(spec in arb_spec()) {
        let g = generate_from_spec(&spec);
        // Non-degenerate even under heavy hole/missing probabilities.
        prop_assert!(g.network.num_nodes() > 20, "only {} nodes", g.network.num_nodes());
        prop_assert!(g.network.check_invariants());
        let scc = strongly_connected_components(&g.network);
        prop_assert_eq!(scc.num_components, 1);
        // Weights strictly positive (Dijkstra precondition).
        for e in g.network.edges() {
            prop_assert!(g.network.weight(e) > 0);
        }
    }

    #[test]
    fn generation_is_pure(spec in arb_spec()) {
        let a = generate_from_spec(&spec);
        let b = generate_from_spec(&spec);
        prop_assert_eq!(a.network.num_nodes(), b.network.num_nodes());
        prop_assert_eq!(a.network.num_edges(), b.network.num_edges());
        for e in a.network.edges() {
            prop_assert_eq!(a.network.weight(e), b.network.weight(e));
        }
    }

    #[test]
    fn routable_between_random_nodes(spec in arb_spec(), pick in any::<u64>()) {
        let g = generate_from_spec(&spec);
        let n = g.network.num_nodes() as u64;
        let s = arp_roadnet::NodeId((pick % n) as u32);
        let t = arp_roadnet::NodeId(((pick / 7919) % n) as u32);
        if s != t {
            let p = arp_core::shortest_path(&g.network, g.network.weights(), s, t);
            prop_assert!(p.is_ok(), "{s} -> {t} failed in a strongly connected city");
        }
    }
}
