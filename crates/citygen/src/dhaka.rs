//! Dhaka morphology: very dense, highly irregular street fabric with many
//! dead ends, few continuous arterials, almost no freeways, and the
//! Buriganga/Turag rivers constraining the south and west with few bridges.

use crate::spec::{rel, ArterialSpec, CitySpec, FreewaySpec, GridSpec, Obstacle};
use crate::{City, Scale};

/// The Dhaka [`CitySpec`] at the given scale and seed.
pub fn spec(scale: Scale, seed: u64) -> CitySpec {
    let dim = scale.grid_dim();
    CitySpec {
        name: City::Dhaka.name().to_string(),
        seed,
        center: City::Dhaka.center(),
        grid: GridSpec {
            cols: dim,
            rows: dim,
            // Denser blocks than Melbourne.
            spacing_m: 110.0,
            // Organic, unplanned fabric.
            irregularity: 0.35,
            hole_prob: 0.08,
            missing_street_prob: 0.12,
            oneway_fraction: 0.30,
            diagonal_prob: 0.05,
        },
        // Sparse arterials: long gaps between continuous major roads.
        arterials: ArterialSpec {
            row_every: 12,
            col_every: 10,
        },
        // One short elevated expressway analogue; no ring.
        freeways: vec![FreewaySpec {
            waypoints: vec![rel(0.45, 0.05), rel(0.50, 0.45), rel(0.55, 0.95)],
            node_spacing_m: 500.0,
            ramp_every: 6,
            closed: false,
        }],
        obstacles: vec![
            // Buriganga river along the southern edge, two bridges.
            Obstacle {
                polygon: vec![
                    rel(-0.05, -0.05),
                    rel(1.05, -0.05),
                    rel(1.05, 0.10),
                    rel(0.60, 0.14),
                    rel(0.20, 0.12),
                    rel(-0.05, 0.16),
                ],
                bridges: vec![
                    (rel(0.30, 0.14), rel(0.32, 0.06)),
                    (rel(0.70, 0.15), rel(0.72, 0.07)),
                ],
            },
            // Turag river on the west, one bridge.
            Obstacle {
                polygon: vec![
                    rel(-0.05, 0.16),
                    rel(0.10, 0.30),
                    rel(0.12, 0.60),
                    rel(0.08, 0.95),
                    rel(-0.05, 1.05),
                ],
                bridges: vec![(rel(0.13, 0.50), rel(0.05, 0.48))],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_from_spec;
    use arp_roadnet::category::RoadCategory;

    #[test]
    fn dhaka_spec_sane() {
        let s = spec(Scale::Tiny, 1);
        assert_eq!(s.name, "Dhaka");
        assert!(s.grid.irregularity > 0.3);
        assert!(s.grid.oneway_fraction > 0.25);
    }

    #[test]
    fn dhaka_is_denser_but_less_arterial_than_melbourne() {
        let d = generate_from_spec(&spec(Scale::Small, 11));
        let m = generate_from_spec(&crate::melbourne::spec(Scale::Small, 11));
        let primary_share = |g: &crate::GeneratedCity| {
            g.network
                .edges()
                .filter(|&e| g.network.category(e) == RoadCategory::Primary)
                .count() as f64
                / g.network.num_edges() as f64
        };
        assert!(primary_share(&d) < primary_share(&m));
    }
}
