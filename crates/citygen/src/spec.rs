//! Declarative city-morphology specification consumed by the generator.
//!
//! A [`CitySpec`] describes a city in a unit square `[0,1]²` of *relative*
//! coordinates; the generator maps them onto lon/lat around the city's
//! real-world centre. Obstacles, freeway polylines and bridge locations are
//! all expressed in relative coordinates so the same morphology scales from
//! test-sized to benchmark-sized networks.

use arp_roadnet::geo::Point;

/// Relative coordinate in the unit square.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rel {
    /// Horizontal position, `0.0` = west edge, `1.0` = east edge.
    pub x: f64,
    /// Vertical position, `0.0` = south edge, `1.0` = north edge.
    pub y: f64,
}

/// Shorthand constructor for a relative coordinate.
pub fn rel(x: f64, y: f64) -> Rel {
    Rel { x, y }
}

/// Base street-lattice parameters.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Lattice columns (west–east streets + 1).
    pub cols: u32,
    /// Lattice rows.
    pub rows: u32,
    /// Spacing between adjacent lattice nodes in metres.
    pub spacing_m: f64,
    /// Positional jitter as a fraction of spacing (0 = perfect grid,
    /// 0.4 = organic fabric like Dhaka's).
    pub irregularity: f64,
    /// Probability that a lattice node is deleted, creating dead ends and
    /// detours.
    pub hole_prob: f64,
    /// Probability that a street segment is missing even when both
    /// endpoints exist.
    pub missing_street_prob: f64,
    /// Fraction of residential streets that are one-way.
    pub oneway_fraction: f64,
    /// Probability of a diagonal shortcut across a block.
    pub diagonal_prob: f64,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            cols: 40,
            rows: 40,
            spacing_m: 150.0,
            irregularity: 0.15,
            hole_prob: 0.04,
            missing_street_prob: 0.05,
            oneway_fraction: 0.15,
            diagonal_prob: 0.02,
        }
    }
}

/// Arterial-road overlay: every `row_every`-th row / `col_every`-th column
/// of the lattice is upgraded to a higher category with a higher speed.
#[derive(Clone, Debug)]
pub struct ArterialSpec {
    /// Upgrade every n-th row to a primary arterial (0 = none).
    pub row_every: u32,
    /// Upgrade every n-th column to a secondary arterial (0 = none).
    pub col_every: u32,
}

impl Default for ArterialSpec {
    fn default() -> Self {
        ArterialSpec {
            row_every: 8,
            col_every: 8,
        }
    }
}

/// A freeway corridor: a polyline in relative coordinates, sampled at
/// roughly `node_spacing_m`, connected to the surface grid with
/// motorway-link ramps every `ramp_every` freeway nodes.
#[derive(Clone, Debug)]
pub struct FreewaySpec {
    /// Waypoints of the corridor in relative coordinates.
    pub waypoints: Vec<Rel>,
    /// Distance between consecutive freeway nodes in metres.
    pub node_spacing_m: f64,
    /// A ramp pair (on + off) is added every this many freeway nodes.
    pub ramp_every: u32,
    /// Whether the corridor is a closed ring.
    pub closed: bool,
}

/// A water body (bay, river, harbor): a polygon in relative coordinates.
/// Lattice nodes inside the polygon are removed; `bridges` lists relative
/// locations where a crossing is stitched back in.
#[derive(Clone, Debug)]
pub struct Obstacle {
    /// Polygon vertices in relative coordinates (implicitly closed).
    pub polygon: Vec<Rel>,
    /// Bridge locations: pairs of relative points (west/south bank,
    /// east/north bank) connected by a primary-road bridge.
    pub bridges: Vec<(Rel, Rel)>,
}

impl Obstacle {
    /// Point-in-polygon test (ray casting, tolerant of boundary points).
    pub fn contains(&self, p: Rel) -> bool {
        let poly = &self.polygon;
        let n = poly.len();
        if n < 3 {
            return false;
        }
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = (poly[i].x, poly[i].y);
            let (xj, yj) = (poly[j].x, poly[j].y);
            if ((yi > p.y) != (yj > p.y)) && (p.x < (xj - xi) * (p.y - yi) / (yj - yi) + xi) {
                inside = !inside;
            }
            j = i;
        }
        inside
    }
}

/// Full declarative description of a synthetic city.
#[derive(Clone, Debug)]
pub struct CitySpec {
    /// City name (for logs and experiment output).
    pub name: String,
    /// Deterministic seed.
    pub seed: u64,
    /// Real-world centre the relative unit square is mapped around.
    pub center: Point,
    /// Base lattice parameters.
    pub grid: GridSpec,
    /// Arterial overlay.
    pub arterials: ArterialSpec,
    /// Freeway corridors.
    pub freeways: Vec<FreewaySpec>,
    /// Water bodies.
    pub obstacles: Vec<Obstacle>,
}

impl CitySpec {
    /// Extent of the city square in metres (cols × spacing).
    pub fn extent_m(&self) -> (f64, f64) {
        (
            self.grid.cols as f64 * self.grid.spacing_m,
            self.grid.rows as f64 * self.grid.spacing_m,
        )
    }

    /// Converts a relative coordinate to lon/lat around the centre.
    pub fn rel_to_point(&self, r: Rel) -> Point {
        let (w_m, h_m) = self.extent_m();
        let dx_m = (r.x - 0.5) * w_m;
        let dy_m = (r.y - 0.5) * h_m;
        let lat_deg_per_m = 1.0 / 110_574.0;
        let lon_deg_per_m = 1.0 / (111_320.0 * self.center.lat.to_radians().cos().abs().max(0.2));
        Point::new(
            self.center.lon + dx_m * lon_deg_per_m,
            self.center.lat + dy_m * lat_deg_per_m,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_in_polygon_square() {
        let ob = Obstacle {
            polygon: vec![rel(0.2, 0.2), rel(0.8, 0.2), rel(0.8, 0.8), rel(0.2, 0.8)],
            bridges: vec![],
        };
        assert!(ob.contains(rel(0.5, 0.5)));
        assert!(!ob.contains(rel(0.1, 0.5)));
        assert!(!ob.contains(rel(0.5, 0.9)));
        assert!(!ob.contains(rel(0.9, 0.9)));
    }

    #[test]
    fn point_in_polygon_triangle() {
        let ob = Obstacle {
            polygon: vec![rel(0.0, 0.0), rel(1.0, 0.0), rel(0.5, 1.0)],
            bridges: vec![],
        };
        assert!(ob.contains(rel(0.5, 0.3)));
        assert!(!ob.contains(rel(0.05, 0.9)));
        assert!(!ob.contains(rel(0.95, 0.9)));
    }

    #[test]
    fn degenerate_polygon_contains_nothing() {
        let ob = Obstacle {
            polygon: vec![rel(0.5, 0.5), rel(0.6, 0.6)],
            bridges: vec![],
        };
        assert!(!ob.contains(rel(0.55, 0.55)));
    }

    #[test]
    fn rel_to_point_maps_center() {
        let spec = CitySpec {
            name: "test".into(),
            seed: 0,
            center: Point::new(144.0, -37.0),
            grid: GridSpec::default(),
            arterials: ArterialSpec::default(),
            freeways: vec![],
            obstacles: vec![],
        };
        let c = spec.rel_to_point(rel(0.5, 0.5));
        assert!((c.lon - 144.0).abs() < 1e-9);
        assert!((c.lat - -37.0).abs() < 1e-9);
        // East edge is east of the centre, north edge is north.
        assert!(spec.rel_to_point(rel(1.0, 0.5)).lon > c.lon);
        assert!(spec.rel_to_point(rel(0.5, 1.0)).lat > c.lat);
    }

    #[test]
    fn rel_to_point_distances_match_extent() {
        let spec = CitySpec {
            name: "test".into(),
            seed: 0,
            center: Point::new(144.0, -37.0),
            grid: GridSpec {
                cols: 10,
                rows: 10,
                spacing_m: 100.0,
                ..GridSpec::default()
            },
            arterials: ArterialSpec::default(),
            freeways: vec![],
            obstacles: vec![],
        };
        let west = spec.rel_to_point(rel(0.0, 0.5));
        let east = spec.rel_to_point(rel(1.0, 0.5));
        let d = arp_roadnet::geo::haversine_m(west, east);
        assert!((d - 1000.0).abs() < 10.0, "got {d}");
    }
}
