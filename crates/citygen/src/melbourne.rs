//! Melbourne morphology: regular CBD grid on a coastal bay (Port Phillip),
//! the Yarra river crossed by a handful of bridges, a freeway ring plus
//! radial freeways (Monash/West Gate/Tullamarine analogues).

use crate::spec::{rel, ArterialSpec, CitySpec, FreewaySpec, GridSpec, Obstacle};
use crate::{City, Scale};

/// The Melbourne [`CitySpec`] at the given scale and seed.
pub fn spec(scale: Scale, seed: u64) -> CitySpec {
    let dim = scale.grid_dim();
    CitySpec {
        name: City::Melbourne.name().to_string(),
        seed,
        center: City::Melbourne.center(),
        grid: GridSpec {
            cols: dim,
            rows: dim,
            spacing_m: 180.0,
            irregularity: 0.12,
            hole_prob: 0.03,
            missing_street_prob: 0.04,
            oneway_fraction: 0.18,
            diagonal_prob: 0.02,
        },
        arterials: ArterialSpec {
            row_every: 6,
            col_every: 6,
        },
        freeways: vec![
            // Ring road.
            FreewaySpec {
                waypoints: vec![
                    rel(0.15, 0.20),
                    rel(0.85, 0.20),
                    rel(0.90, 0.50),
                    rel(0.85, 0.85),
                    rel(0.15, 0.85),
                    rel(0.10, 0.50),
                ],
                node_spacing_m: 450.0,
                ramp_every: 4,
                closed: true,
            },
            // South-east radial (Monash analogue).
            FreewaySpec {
                waypoints: vec![rel(0.50, 0.50), rel(0.75, 0.30), rel(0.98, 0.12)],
                node_spacing_m: 450.0,
                ramp_every: 4,
                closed: false,
            },
            // North radial (Tullamarine analogue).
            FreewaySpec {
                waypoints: vec![rel(0.48, 0.55), rel(0.40, 0.80), rel(0.35, 0.98)],
                node_spacing_m: 450.0,
                ramp_every: 4,
                closed: false,
            },
        ],
        obstacles: vec![
            // Port Phillip bay bites into the south-west corner.
            Obstacle {
                polygon: vec![
                    rel(-0.05, -0.05),
                    rel(0.38, -0.05),
                    rel(0.30, 0.10),
                    rel(0.18, 0.22),
                    rel(-0.05, 0.30),
                ],
                bridges: vec![],
            },
            // Yarra river: a diagonal band through the CBD, three bridges.
            Obstacle {
                polygon: vec![
                    rel(0.30, 0.44),
                    rel(1.02, 0.60),
                    rel(1.02, 0.66),
                    rel(0.30, 0.50),
                ],
                bridges: vec![
                    (rel(0.40, 0.44), rel(0.42, 0.53)),
                    (rel(0.60, 0.48), rel(0.62, 0.58)),
                    (rel(0.85, 0.54), rel(0.87, 0.64)),
                ],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_from_spec;

    #[test]
    fn melbourne_spec_sane() {
        let s = spec(Scale::Tiny, 1);
        assert_eq!(s.name, "Melbourne");
        assert_eq!(s.freeways.len(), 3);
        assert_eq!(s.obstacles.len(), 2);
        assert!(s.obstacles[1].bridges.len() >= 3);
    }

    #[test]
    fn melbourne_generates_with_river_bridges() {
        let g = generate_from_spec(&spec(Scale::Small, 3));
        // The network spans both banks of the Yarra band: nodes exist with
        // relative y above and below the band (lat above/below centre).
        let lat_c = g.center.lat;
        let north = g
            .network
            .nodes()
            .filter(|&n| g.network.point(n).lat > lat_c)
            .count();
        let south = g
            .network
            .nodes()
            .filter(|&n| g.network.point(n).lat < lat_c)
            .count();
        assert!(north > 100 && south > 100, "north {north} south {south}");
    }
}
