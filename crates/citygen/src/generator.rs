//! The city generator: turns a [`CitySpec`] into a [`RoadNetwork`].
//!
//! Pipeline: jittered lattice → obstacle carving → street connection with
//! arterial upgrades, one-way streets and diagonal shortcuts → freeway
//! corridors with ramps → bridges over obstacles → largest-SCC extraction.

use arp_roadnet::builder::{EdgeSpec, GraphBuilder};
use arp_roadnet::category::RoadCategory;
use arp_roadnet::csr::RoadNetwork;
use arp_roadnet::geo::Point;
use arp_roadnet::ids::NodeId;
use arp_roadnet::scc::largest_scc_subnetwork;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::spec::{CitySpec, Rel};

/// A generated city: the strongly connected road network plus metadata.
#[derive(Clone, Debug)]
pub struct GeneratedCity {
    /// City name from the spec.
    pub name: String,
    /// The road network (largest SCC of the generator output).
    pub network: RoadNetwork,
    /// Real-world centre coordinates.
    pub center: Point,
    /// Seed the network was generated with.
    pub seed: u64,
}

/// Lattice bookkeeping during generation.
struct Lattice {
    cols: usize,
    /// Node id per lattice slot (`None` = removed by hole or obstacle).
    nodes: Vec<Option<NodeId>>,
    /// Jittered relative position per slot (valid where `nodes` is `Some`).
    rels: Vec<Rel>,
}

impl Lattice {
    fn idx(&self, x: usize, y: usize) -> usize {
        y * (self.cols + 1) + x
    }

    fn node(&self, x: usize, y: usize) -> Option<NodeId> {
        self.nodes[self.idx(x, y)]
    }

    fn rel(&self, x: usize, y: usize) -> Rel {
        self.rels[self.idx(x, y)]
    }

    /// Nearest existing lattice node to a relative point (brute force).
    fn nearest(&self, p: Rel) -> Option<(NodeId, Rel)> {
        let mut best: Option<(NodeId, Rel, f64)> = None;
        for i in 0..self.nodes.len() {
            if let Some(id) = self.nodes[i] {
                let r = self.rels[i];
                let d = (r.x - p.x).powi(2) + (r.y - p.y).powi(2);
                if best.as_ref().is_none_or(|&(_, _, bd)| d < bd) {
                    best = Some((id, r, d));
                }
            }
        }
        best.map(|(id, r, _)| (id, r))
    }
}

/// Generates the road network described by `spec`.
pub fn generate_from_spec(spec: &CitySpec) -> GeneratedCity {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let cols = spec.grid.cols as usize;
    let rows = spec.grid.rows as usize;
    let mut b = GraphBuilder::with_capacity((cols + 1) * (rows + 1), (cols + 1) * (rows + 1) * 4);

    let mut lattice = Lattice {
        cols,
        nodes: vec![None; (cols + 1) * (rows + 1)],
        rels: vec![Rel { x: 0.0, y: 0.0 }; (cols + 1) * (rows + 1)],
    };

    // 1. Place jittered lattice nodes, skipping holes and water.
    let jitter = spec.grid.irregularity / cols.max(1) as f64;
    for y in 0..=rows {
        for x in 0..=cols {
            let base = Rel {
                x: x as f64 / cols.max(1) as f64,
                y: y as f64 / rows.max(1) as f64,
            };
            let r = Rel {
                x: base.x + rng.random_range(-jitter..=jitter),
                y: base.y + rng.random_range(-jitter..=jitter),
            };
            let i = lattice.idx(x, y);
            lattice.rels[i] = r;
            if rng.random_bool(spec.grid.hole_prob) {
                continue;
            }
            if spec.obstacles.iter().any(|o| o.contains(r)) {
                continue;
            }
            lattice.nodes[i] = Some(b.add_node(spec.rel_to_point(r)));
        }
    }

    // 2. Streets between lattice neighbours.
    let crosses_water = |a: Rel, c: Rel, spec: &CitySpec| {
        [0.25, 0.5, 0.75].iter().any(|&t| {
            let mid = Rel {
                x: a.x + (c.x - a.x) * t,
                y: a.y + (c.y - a.y) * t,
            };
            spec.obstacles.iter().any(|o| o.contains(mid))
        })
    };

    let row_every = spec.arterials.row_every as usize;
    let col_every = spec.arterials.col_every as usize;
    for y in 0..=rows {
        for x in 0..=cols {
            let Some(a) = lattice.node(x, y) else {
                continue;
            };
            let ra = lattice.rel(x, y);
            // East neighbour.
            if x < cols {
                if let Some(c) = lattice.node(x + 1, y) {
                    let rc = lattice.rel(x + 1, y);
                    if !rng.random_bool(spec.grid.missing_street_prob)
                        && !crosses_water(ra, rc, spec)
                    {
                        let cat = if row_every > 0 && y % row_every == 0 {
                            RoadCategory::Primary
                        } else {
                            RoadCategory::Residential
                        };
                        add_street(&mut b, &mut rng, a, c, cat, spec.grid.oneway_fraction);
                    }
                }
            }
            // North neighbour.
            if y < rows {
                if let Some(c) = lattice.node(x, y + 1) {
                    let rc = lattice.rel(x, y + 1);
                    if !rng.random_bool(spec.grid.missing_street_prob)
                        && !crosses_water(ra, rc, spec)
                    {
                        let cat = if col_every > 0 && x % col_every == 0 {
                            RoadCategory::Secondary
                        } else {
                            RoadCategory::Residential
                        };
                        add_street(&mut b, &mut rng, a, c, cat, spec.grid.oneway_fraction);
                    }
                }
            }
            // Diagonal shortcut.
            if x < cols && y < rows && rng.random_bool(spec.grid.diagonal_prob) {
                if let Some(c) = lattice.node(x + 1, y + 1) {
                    let rc = lattice.rel(x + 1, y + 1);
                    if !crosses_water(ra, rc, spec) {
                        b.add_bidirectional(a, c, EdgeSpec::category(RoadCategory::Tertiary));
                    }
                }
            }
        }
    }

    // 3. Freeway corridors.
    for fw in &spec.freeways {
        let (w_m, h_m) = spec.extent_m();
        let extent_m = w_m.max(h_m);
        let spacing_rel = (fw.node_spacing_m / extent_m).max(1e-4);
        let chain = sample_polyline(&fw.waypoints, spacing_rel, fw.closed);
        if chain.len() < 2 {
            continue;
        }
        let ids: Vec<NodeId> = chain
            .iter()
            .map(|&r| b.add_node(spec.rel_to_point(r)))
            .collect();
        for w in ids.windows(2) {
            b.add_bidirectional(w[0], w[1], EdgeSpec::category(RoadCategory::Motorway));
        }
        if fw.closed {
            b.add_bidirectional(
                *ids.last().unwrap(),
                ids[0],
                EdgeSpec::category(RoadCategory::Motorway),
            );
        }
        // Ramps to the surface grid.
        let ramp_every = fw.ramp_every.max(1) as usize;
        for (i, (&fw_node, &fw_rel)) in ids.iter().zip(chain.iter()).enumerate() {
            if i % ramp_every != 0 {
                continue;
            }
            if let Some((surface, _)) = lattice.nearest(fw_rel) {
                b.add_bidirectional(
                    fw_node,
                    surface,
                    EdgeSpec::category(RoadCategory::MotorwayLink),
                );
            }
        }
    }

    // 4. Bridges over obstacles.
    for ob in &spec.obstacles {
        for &(ra, rb) in &ob.bridges {
            let (Some((na, _)), Some((nb, _))) = (lattice.nearest(ra), lattice.nearest(rb)) else {
                continue;
            };
            if na != nb {
                b.add_bidirectional(na, nb, EdgeSpec::category(RoadCategory::Primary));
            }
        }
    }

    let raw = b.build();
    let (network, _) = largest_scc_subnetwork(&raw);
    GeneratedCity {
        name: spec.name.clone(),
        network,
        center: spec.center,
        seed: spec.seed,
    }
}

fn add_street(
    b: &mut GraphBuilder,
    rng: &mut StdRng,
    a: NodeId,
    c: NodeId,
    cat: RoadCategory,
    oneway_fraction: f64,
) {
    let oneway = cat == RoadCategory::Residential && rng.random_bool(oneway_fraction);
    if oneway {
        if rng.random_bool(0.5) {
            b.add_edge(a, c, EdgeSpec::category(cat));
        } else {
            b.add_edge(c, a, EdgeSpec::category(cat));
        }
    } else {
        b.add_bidirectional(a, c, EdgeSpec::category(cat));
    }
}

/// Samples a polyline of relative waypoints at roughly `spacing` apart
/// (in relative units). Includes the waypoints themselves.
fn sample_polyline(waypoints: &[Rel], spacing: f64, closed: bool) -> Vec<Rel> {
    let mut out = Vec::new();
    if waypoints.is_empty() {
        return out;
    }
    let n = waypoints.len();
    let segs = if closed { n } else { n - 1 };
    for s in 0..segs {
        let a = waypoints[s];
        let c = waypoints[(s + 1) % n];
        let len = ((c.x - a.x).powi(2) + (c.y - a.y).powi(2)).sqrt();
        let steps = (len / spacing).ceil().max(1.0) as usize;
        for k in 0..steps {
            let t = k as f64 / steps as f64;
            out.push(Rel {
                x: a.x + (c.x - a.x) * t,
                y: a.y + (c.y - a.y) * t,
            });
        }
    }
    if !closed {
        out.push(waypoints[n - 1]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{rel, ArterialSpec, FreewaySpec, GridSpec, Obstacle};

    fn base_spec() -> CitySpec {
        CitySpec {
            name: "testville".into(),
            seed: 5,
            center: Point::new(144.0, -37.0),
            grid: GridSpec {
                cols: 15,
                rows: 15,
                spacing_m: 150.0,
                ..GridSpec::default()
            },
            arterials: ArterialSpec::default(),
            freeways: vec![],
            obstacles: vec![],
        }
    }

    #[test]
    fn plain_grid_generates() {
        let g = generate_from_spec(&base_spec());
        assert!(g.network.num_nodes() > 150);
        assert!(g.network.check_invariants());
        assert_eq!(g.name, "testville");
    }

    #[test]
    fn obstacle_removes_nodes() {
        let mut with_hole = base_spec();
        with_hole.obstacles.push(Obstacle {
            polygon: vec![rel(0.3, 0.3), rel(0.7, 0.3), rel(0.7, 0.7), rel(0.3, 0.7)],
            bridges: vec![(rel(0.28, 0.5), rel(0.72, 0.5))],
        });
        let plain = generate_from_spec(&base_spec());
        let holed = generate_from_spec(&with_hole);
        assert!(holed.network.num_nodes() < plain.network.num_nodes());
    }

    #[test]
    fn freeway_adds_motorway_edges() {
        let mut spec = base_spec();
        spec.freeways.push(FreewaySpec {
            waypoints: vec![rel(0.0, 0.5), rel(1.0, 0.5)],
            node_spacing_m: 300.0,
            ramp_every: 3,
            closed: false,
        });
        let g = generate_from_spec(&spec);
        let motorway_edges = g
            .network
            .edges()
            .filter(|&e| g.network.category(e) == RoadCategory::Motorway)
            .count();
        let ramp_edges = g
            .network
            .edges()
            .filter(|&e| g.network.category(e) == RoadCategory::MotorwayLink)
            .count();
        assert!(motorway_edges >= 10, "got {motorway_edges}");
        assert!(ramp_edges >= 2, "got {ramp_edges}");
    }

    #[test]
    fn arterials_present() {
        let g = generate_from_spec(&base_spec());
        assert!(g
            .network
            .edges()
            .any(|e| g.network.category(e) == RoadCategory::Primary));
        assert!(g
            .network
            .edges()
            .any(|e| g.network.category(e) == RoadCategory::Secondary));
    }

    #[test]
    fn oneway_fraction_creates_asymmetric_edges() {
        let mut spec = base_spec();
        spec.grid.oneway_fraction = 0.8;
        spec.grid.hole_prob = 0.0;
        spec.grid.missing_street_prob = 0.0;
        let g = generate_from_spec(&spec);
        let asym = g
            .network
            .edges()
            .filter(|&e| g.network.reverse_edge(e).is_none())
            .count();
        assert!(asym > 0, "expected one-way streets");
    }

    #[test]
    fn sample_polyline_open_and_closed() {
        let wp = vec![rel(0.0, 0.0), rel(1.0, 0.0)];
        let open = sample_polyline(&wp, 0.25, false);
        assert_eq!(open.first().copied(), Some(rel(0.0, 0.0)));
        assert_eq!(open.last().copied(), Some(rel(1.0, 0.0)));
        assert!(open.len() >= 4);

        let square = vec![rel(0.0, 0.0), rel(1.0, 0.0), rel(1.0, 1.0), rel(0.0, 1.0)];
        let ring = sample_polyline(&square, 0.5, true);
        // Closed ring samples all four sides but repeats no endpoint.
        assert!(ring.len() >= 8);
    }

    #[test]
    fn empty_polyline_is_empty() {
        assert!(sample_polyline(&[], 0.1, false).is_empty());
        assert_eq!(sample_polyline(&[rel(0.5, 0.5)], 0.1, false).len(), 1);
    }
}
