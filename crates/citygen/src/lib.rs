#![warn(missing_docs)]
//! # arp-citygen
//!
//! Deterministic synthetic road-network generators for the three study
//! cities — **Melbourne**, **Dhaka** and **Copenhagen**.
//!
//! The original study runs on Geofabrik OSM extracts, which are not
//! available offline; this crate substitutes parameterized generators whose
//! outputs have the structural properties the alternative-routing
//! evaluation depends on:
//!
//! * a street grid with realistic irregularity and missing blocks,
//! * a hierarchy of road categories (residential → arterial → freeway) with
//!   matching speed limits,
//! * one-way streets,
//! * water obstacles (bay, rivers, harbor) crossed only at bridges — the
//!   main source of interesting alternative-route topology,
//! * freeway rings/radials with sparse ramps, so the fastest path often
//!   differs sharply from the geometrically direct path.
//!
//! Every generator is a pure function of `(scale, seed)`, so experiments
//! are exactly reproducible.
//!
//! ```
//! use arp_citygen::{City, Scale};
//!
//! let city = arp_citygen::generate(City::Melbourne, Scale::Tiny, 42);
//! assert!(city.network.num_nodes() > 100);
//! ```

pub mod copenhagen;
pub mod dhaka;
pub mod generator;
pub mod melbourne;
pub mod spec;

pub use generator::{generate_from_spec, GeneratedCity};
pub use spec::{ArterialSpec, CitySpec, FreewaySpec, GridSpec, Obstacle};

use arp_roadnet::geo::Point;

/// The three study cities from the paper's title.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum City {
    /// Melbourne, Australia — coastal bay, strong CBD grid, freeway ring.
    Melbourne,
    /// Dhaka, Bangladesh — dense irregular fabric, rivers, few arterials.
    Dhaka,
    /// Copenhagen, Denmark — radial "finger plan", harbor strait.
    Copenhagen,
}

impl City {
    /// All three cities, for exhaustive experiment sweeps.
    pub const ALL: [City; 3] = [City::Melbourne, City::Dhaka, City::Copenhagen];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            City::Melbourne => "Melbourne",
            City::Dhaka => "Dhaka",
            City::Copenhagen => "Copenhagen",
        }
    }

    /// Real-world centre coordinates the synthetic network is anchored to.
    pub fn center(self) -> Point {
        match self {
            City::Melbourne => Point::new(144.9631, -37.8136),
            City::Dhaka => Point::new(90.4125, 23.8103),
            City::Copenhagen => Point::new(12.5683, 55.6761),
        }
    }
}

impl std::fmt::Display for City {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for City {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "melbourne" => Ok(City::Melbourne),
            "dhaka" => Ok(City::Dhaka),
            "copenhagen" => Ok(City::Copenhagen),
            other => Err(format!("unknown city {other:?}")),
        }
    }
}

/// Network size presets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// ~400 nodes — unit tests.
    Tiny,
    /// ~2500 nodes — integration tests and quick examples.
    Small,
    /// ~10 000 nodes — the default experiment scale.
    Medium,
    /// ~40 000 nodes — stress benchmarks.
    Large,
}

impl Scale {
    /// Grid dimension (the base lattice is `dim × dim`).
    pub fn grid_dim(self) -> u32 {
        match self {
            Scale::Tiny => 20,
            Scale::Small => 50,
            Scale::Medium => 100,
            Scale::Large => 200,
        }
    }
}

/// Generates the road network of `city` at `scale` with deterministic
/// `seed`. The result is the largest strongly connected component of the
/// raw generator output, so any node can route to any other.
pub fn generate(city: City, scale: Scale, seed: u64) -> GeneratedCity {
    let spec = match city {
        City::Melbourne => melbourne::spec(scale, seed),
        City::Dhaka => dhaka::spec(scale, seed),
        City::Copenhagen => copenhagen::spec(scale, seed),
    };
    generate_from_spec(&spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_roadnet::scc::strongly_connected_components;

    #[test]
    fn all_cities_generate_connected_networks() {
        for city in City::ALL {
            let g = generate(city, Scale::Tiny, 7);
            assert!(
                g.network.num_nodes() > 100,
                "{city}: {}",
                g.network.num_nodes()
            );
            assert!(g.network.num_edges() > g.network.num_nodes());
            let scc = strongly_connected_components(&g.network);
            assert_eq!(scc.num_components, 1, "{city} must be strongly connected");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for city in City::ALL {
            let a = generate(city, Scale::Tiny, 123);
            let b = generate(city, Scale::Tiny, 123);
            assert_eq!(a.network.num_nodes(), b.network.num_nodes());
            assert_eq!(a.network.num_edges(), b.network.num_edges());
            for e in a.network.edges() {
                assert_eq!(a.network.weight(e), b.network.weight(e));
                assert_eq!(a.network.head(e), b.network.head(e));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(City::Melbourne, Scale::Tiny, 1);
        let b = generate(City::Melbourne, Scale::Tiny, 2);
        let same = a.network.num_edges() == b.network.num_edges()
            && a.network.edges().all(|e| {
                a.network.head(e) == b.network.head(e) && a.network.weight(e) == b.network.weight(e)
            });
        assert!(!same);
    }

    #[test]
    fn city_parse_roundtrip() {
        for city in City::ALL {
            let parsed: City = city.name().to_lowercase().parse().unwrap();
            assert_eq!(parsed, city);
        }
        assert!("atlantis".parse::<City>().is_err());
    }

    #[test]
    fn scale_ordering() {
        assert!(Scale::Tiny.grid_dim() < Scale::Small.grid_dim());
        assert!(Scale::Small.grid_dim() < Scale::Medium.grid_dim());
        assert!(Scale::Medium.grid_dim() < Scale::Large.grid_dim());
    }

    #[test]
    fn melbourne_has_freeways_dhaka_few() {
        let mel = generate(City::Melbourne, Scale::Small, 9);
        let dha = generate(City::Dhaka, Scale::Small, 9);
        let freeway_share = |g: &GeneratedCity| {
            let total = g.network.num_edges() as f64;
            let fw = g
                .network
                .edges()
                .filter(|&e| g.network.category(e).is_freeway())
                .count() as f64;
            fw / total
        };
        assert!(freeway_share(&mel) > freeway_share(&dha));
    }
}
