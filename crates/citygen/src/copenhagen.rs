//! Copenhagen morphology: moderate grid with the harbor strait splitting
//! the city north–south (Zealand vs. Amager) crossed by a few bridges, and
//! radial arterial "fingers" per the 1947 finger plan, with a motorway ring
//! (Ring 3 analogue) on the landward side.

use crate::spec::{rel, ArterialSpec, CitySpec, FreewaySpec, GridSpec, Obstacle};
use crate::{City, Scale};

/// The Copenhagen [`CitySpec`] at the given scale and seed.
pub fn spec(scale: Scale, seed: u64) -> CitySpec {
    let dim = scale.grid_dim();
    CitySpec {
        name: City::Copenhagen.name().to_string(),
        seed,
        center: City::Copenhagen.center(),
        grid: GridSpec {
            cols: dim,
            rows: dim,
            spacing_m: 150.0,
            irregularity: 0.20,
            hole_prob: 0.05,
            missing_street_prob: 0.06,
            oneway_fraction: 0.22,
            diagonal_prob: 0.04,
        },
        arterials: ArterialSpec {
            row_every: 7,
            col_every: 7,
        },
        freeways: vec![
            // Ring 3 analogue: a western half-ring.
            FreewaySpec {
                waypoints: vec![
                    rel(0.20, 0.05),
                    rel(0.12, 0.35),
                    rel(0.10, 0.65),
                    rel(0.20, 0.95),
                ],
                node_spacing_m: 450.0,
                ramp_every: 4,
                closed: false,
            },
            // Amager motorway towards the airport (south-east).
            FreewaySpec {
                waypoints: vec![rel(0.55, 0.35), rel(0.75, 0.20), rel(0.95, 0.10)],
                node_spacing_m: 450.0,
                ramp_every: 4,
                closed: false,
            },
        ],
        obstacles: vec![
            // The harbor strait: a north-south band east of the centre,
            // three bridges (Langebro / Knippelsbro / Sjællandsbro analogues).
            Obstacle {
                polygon: vec![
                    rel(0.58, -0.05),
                    rel(0.66, -0.05),
                    rel(0.62, 0.50),
                    rel(0.70, 1.05),
                    rel(0.62, 1.05),
                    rel(0.54, 0.50),
                ],
                bridges: vec![
                    (rel(0.56, 0.25), rel(0.66, 0.27)),
                    (rel(0.57, 0.45), rel(0.67, 0.47)),
                    (rel(0.60, 0.75), rel(0.70, 0.77)),
                ],
            },
            // Coastal water in the far north-east.
            Obstacle {
                polygon: vec![
                    rel(0.80, 0.80),
                    rel(1.05, 0.70),
                    rel(1.05, 1.05),
                    rel(0.75, 1.05),
                ],
                bridges: vec![],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_from_spec;

    #[test]
    fn copenhagen_spec_sane() {
        let s = spec(Scale::Tiny, 1);
        assert_eq!(s.name, "Copenhagen");
        assert_eq!(s.obstacles[0].bridges.len(), 3);
    }

    #[test]
    fn harbor_splits_city_with_bridges() {
        let g = generate_from_spec(&spec(Scale::Small, 4));
        // Both banks populated and mutually reachable (SCC guarantees it);
        // simply check nodes on each side of the strait exist.
        let lon_c = g.center.lon;
        let west = g
            .network
            .nodes()
            .filter(|&n| g.network.point(n).lon < lon_c)
            .count();
        let east = g
            .network
            .nodes()
            .filter(|&n| g.network.point(n).lon > lon_c + 0.01)
            .count();
        assert!(west > 200, "west {west}");
        assert!(east > 50, "east {east}");
    }
}
