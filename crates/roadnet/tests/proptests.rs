//! Property-based tests for the road-network substrate.

use arp_roadnet::prelude::*;
use arp_roadnet::scc::{largest_scc_subnetwork, strongly_connected_components};
use arp_roadnet::{geo, io};
use proptest::prelude::*;

/// Node coordinates plus an edge list `(tail, head, weight)`.
type GraphParts = (Vec<(f64, f64)>, Vec<(usize, usize, u32)>);

/// Strategy: a random small graph as (node points, edge list).
fn arb_graph() -> impl Strategy<Value = GraphParts> {
    (2usize..40).prop_flat_map(|n| {
        let nodes = proptest::collection::vec((144.0f64..145.0, -38.0f64..-37.0), n);
        let edges = proptest::collection::vec((0..n, 0..n, 1u32..100_000), 0..(n * 4));
        (nodes, edges)
    })
}

fn build(nodes: &[(f64, f64)], edges: &[(usize, usize, u32)]) -> RoadNetwork {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = nodes
        .iter()
        .map(|&(lon, lat)| b.add_node(Point::new(lon, lat)))
        .collect();
    for &(t, h, w) in edges {
        b.add_edge(
            ids[t],
            ids[h],
            EdgeSpec::category(RoadCategory::Primary).with_weight(w),
        );
    }
    b.build()
}

proptest! {
    #[test]
    fn csr_invariants_always_hold((nodes, edges) in arb_graph()) {
        let net = build(&nodes, &edges);
        prop_assert!(net.check_invariants());
    }

    #[test]
    fn forward_and_backward_adjacency_agree((nodes, edges) in arb_graph()) {
        let net = build(&nodes, &edges);
        // Every out-edge of v appears exactly once among in-edges of its head.
        let mut in_counts = vec![0usize; net.num_nodes()];
        for v in net.nodes() {
            for e in net.out_edges(v) {
                prop_assert_eq!(net.tail(e), v);
                in_counts[net.head(e).index()] += 1;
            }
        }
        for v in net.nodes() {
            prop_assert_eq!(net.in_degree(v), in_counts[v.index()]);
            for e in net.in_edges(v) {
                prop_assert_eq!(net.head(e), v);
            }
        }
    }

    #[test]
    fn dedup_keeps_minimum_weight((nodes, edges) in arb_graph()) {
        let net = build(&nodes, &edges);
        use std::collections::HashMap;
        let mut best: HashMap<(u32, u32), u32> = HashMap::new();
        for &(t, h, w) in &edges {
            if t == h { continue; }
            let k = (t as u32, h as u32);
            let e = best.entry(k).or_insert(u32::MAX);
            *e = (*e).min(w);
        }
        prop_assert_eq!(net.num_edges(), best.len());
        for e in net.edges() {
            let k = (net.tail(e).0, net.head(e).0);
            prop_assert_eq!(net.weight(e), best[&k]);
        }
    }

    #[test]
    fn serialization_roundtrip((nodes, edges) in arb_graph()) {
        let net = build(&nodes, &edges);
        let back = io::network_from_str(&io::network_to_string(&net)).unwrap();
        prop_assert_eq!(back.num_nodes(), net.num_nodes());
        prop_assert_eq!(back.num_edges(), net.num_edges());
        for e in net.edges() {
            prop_assert_eq!(back.tail(e), net.tail(e));
            prop_assert_eq!(back.head(e), net.head(e));
            prop_assert_eq!(back.weight(e), net.weight(e));
            prop_assert_eq!(back.category(e), net.category(e));
        }
    }

    #[test]
    fn scc_component_ids_are_dense((nodes, edges) in arb_graph()) {
        let net = build(&nodes, &edges);
        let scc = strongly_connected_components(&net);
        prop_assert_eq!(scc.sizes.len(), scc.num_components);
        let total: u32 = scc.sizes.iter().sum();
        prop_assert_eq!(total as usize, net.num_nodes());
        for v in net.nodes() {
            prop_assert!((scc.component[v.index()] as usize) < scc.num_components);
        }
    }

    #[test]
    fn scc_respects_mutual_reachability_on_cycles(n in 2usize..30) {
        // A directed cycle plus a chord is still one SCC.
        let nodes: Vec<(f64, f64)> = (0..n).map(|i| (144.0 + i as f64 * 1e-3, -37.5)).collect();
        let mut edges: Vec<(usize, usize, u32)> = (0..n).map(|i| (i, (i + 1) % n, 10)).collect();
        edges.push((0, n / 2, 5));
        let net = build(&nodes, &edges);
        let scc = strongly_connected_components(&net);
        prop_assert_eq!(scc.num_components, 1);
    }

    #[test]
    fn largest_scc_is_strongly_connected((nodes, edges) in arb_graph()) {
        let net = build(&nodes, &edges);
        let (sub, _) = largest_scc_subnetwork(&net);
        if sub.num_nodes() > 0 {
            let scc = strongly_connected_components(&sub);
            prop_assert_eq!(scc.num_components, 1);
        }
    }

    #[test]
    fn nearest_node_matches_brute_force(
        (nodes, edges) in arb_graph(),
        qlon in 143.5f64..145.5,
        qlat in -38.5f64..-36.5,
    ) {
        let net = build(&nodes, &edges);
        let idx = SpatialIndex::build(&net);
        let q = Point::new(qlon, qlat);
        let fast = idx.nearest_node(&net, q).unwrap();
        let brute_d = net
            .nodes()
            .map(|v| geo::haversine_m(net.point(v), q))
            .fold(f64::INFINITY, f64::min);
        let fast_d = geo::haversine_m(net.point(fast), q);
        prop_assert!((fast_d - brute_d).abs() < 1e-6, "fast {} brute {}", fast_d, brute_d);
    }

    #[test]
    fn haversine_triangle_inequality(
        a in (144.0f64..145.0, -38.0f64..-37.0),
        b in (144.0f64..145.0, -38.0f64..-37.0),
        c in (144.0f64..145.0, -38.0f64..-37.0),
    ) {
        let pa = Point::new(a.0, a.1);
        let pb = Point::new(b.0, b.1);
        let pc = Point::new(c.0, c.1);
        let ab = geo::haversine_m(pa, pb);
        let bc = geo::haversine_m(pb, pc);
        let ac = geo::haversine_m(pa, pc);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn travel_time_monotone_in_length(
        l1 in 1.0f64..10_000.0,
        dl in 1.0f64..10_000.0,
        speed in 5.0f64..110.0,
    ) {
        let cfg = WeightConfig::paper();
        let w1 = cfg.travel_time_ms(l1, speed, RoadCategory::Primary);
        let w2 = cfg.travel_time_ms(l1 + dl, speed, RoadCategory::Primary);
        prop_assert!(w2 >= w1);
    }
}
