//! Strongly typed identifiers for graph entities.
//!
//! Node and edge ids are `u32` newtypes: road networks at city scale fit
//! comfortably in 32 bits and halving the index width keeps the hot parent
//! and distance arrays cache-friendly (see the type-size guidance in the
//! Rust performance literature).

use std::fmt;

/// Identifier of a vertex in a [`crate::RoadNetwork`].
///
/// Valid ids are dense: `0..num_nodes()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge in a [`crate::RoadNetwork`].
///
/// Valid ids are dense: `0..num_edges()`. Edges are sorted by tail vertex,
/// so a vertex's out-edges form a contiguous id range.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Sentinel used in parent arrays before a vertex is reached.
    pub const INVALID: NodeId = NodeId(u32::MAX);

    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is the [`NodeId::INVALID`] sentinel.
    #[inline]
    pub fn is_invalid(self) -> bool {
        self.0 == u32::MAX
    }
}

impl EdgeId {
    /// Sentinel used in parent-edge arrays before a vertex is reached.
    pub const INVALID: EdgeId = EdgeId(u32::MAX);

    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is the [`EdgeId::INVALID`] sentinel.
    #[inline]
    pub fn is_invalid(self) -> bool {
        self.0 == u32::MAX
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v < u32::MAX as usize);
        NodeId(v as u32)
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v < u32::MAX as usize);
        EdgeId(v as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_invalid() {
            write!(f, "n#invalid")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_invalid() {
            write!(f, "e#invalid")
        } else {
            write!(f, "e{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n: NodeId = 42u32.into();
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "n42");
        assert!(!n.is_invalid());
    }

    #[test]
    fn edge_id_roundtrip() {
        let e: EdgeId = 7usize.into();
        assert_eq!(e.index(), 7);
        assert_eq!(e.to_string(), "e7");
    }

    #[test]
    fn invalid_sentinels() {
        assert!(NodeId::INVALID.is_invalid());
        assert!(EdgeId::INVALID.is_invalid());
        assert_eq!(NodeId::INVALID.to_string(), "n#invalid");
        assert_eq!(EdgeId::INVALID.to_string(), "e#invalid");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(NodeId(3) < NodeId(4));
        assert!(EdgeId(0) < EdgeId::INVALID);
    }

    #[test]
    fn ids_are_word_sized_or_smaller() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }
}
