//! Uniform-grid nearest-vertex index.
//!
//! The demo's query processor "performs geo-coordinate matching and selects
//! the closest vertices from the OSM data to the source and target
//! locations" (§3). A uniform grid over the network bounding box answers
//! nearest-vertex queries in near-constant time at city scale, searching
//! outward ring by ring until the best candidate provably cannot be beaten.

use crate::csr::RoadNetwork;
use crate::geo::{haversine_m, BoundingBox, Point};
use crate::ids::NodeId;

/// Grid-bucketed nearest-vertex index over a [`RoadNetwork`]'s nodes.
#[derive(Clone, Debug)]
pub struct SpatialIndex {
    bbox: BoundingBox,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    /// CSR-style buckets: `starts` has `cols*rows + 1` entries into `items`.
    starts: Vec<u32>,
    items: Vec<NodeId>,
}

impl SpatialIndex {
    /// Builds an index targeting roughly `nodes_per_cell` nodes per bucket.
    pub fn build(net: &RoadNetwork) -> SpatialIndex {
        Self::build_with_density(net, 8)
    }

    /// Builds an index with an explicit target bucket occupancy.
    pub fn build_with_density(net: &RoadNetwork, nodes_per_cell: usize) -> SpatialIndex {
        let n = net.num_nodes();
        let bbox = if net.bbox().is_empty() {
            BoundingBox::new(0.0, 0.0, 0.0, 0.0)
        } else {
            net.bbox()
        };
        let cells = (n / nodes_per_cell.max(1)).max(1);
        let aspect = if bbox.height_deg() > 0.0 {
            (bbox.width_deg() / bbox.height_deg()).clamp(0.1, 10.0)
        } else {
            1.0
        };
        let rows = ((cells as f64 / aspect).sqrt().ceil() as usize).max(1);
        let cols = (cells as f64 / rows as f64).ceil().max(1.0) as usize;
        let cell_w = (bbox.width_deg() / cols as f64).max(1e-9);
        let cell_h = (bbox.height_deg() / rows as f64).max(1e-9);

        let mut idx = SpatialIndex {
            bbox,
            cols,
            rows,
            cell_w,
            cell_h,
            starts: vec![0; cols * rows + 1],
            items: Vec::with_capacity(n),
        };

        // Counting sort into buckets.
        let mut counts = vec![0u32; cols * rows];
        for node in net.nodes() {
            counts[idx.cell_of(net.point(node))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            idx.starts[i + 1] = idx.starts[i] + c;
        }
        let mut cursor = idx.starts.clone();
        idx.items = vec![NodeId::INVALID; n];
        for node in net.nodes() {
            let c = idx.cell_of(net.point(node));
            idx.items[cursor[c] as usize] = node;
            cursor[c] += 1;
        }
        idx
    }

    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.lon - self.bbox.min_lon) / self.cell_w) as isize;
        let cy = ((p.lat - self.bbox.min_lat) / self.cell_h) as isize;
        (
            cx.clamp(0, self.cols as isize - 1) as usize,
            cy.clamp(0, self.rows as isize - 1) as usize,
        )
    }

    fn cell_of(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }

    fn bucket(&self, cx: usize, cy: usize) -> &[NodeId] {
        let c = cy * self.cols + cx;
        let lo = self.starts[c] as usize;
        let hi = self.starts[c + 1] as usize;
        &self.items[lo..hi]
    }

    /// Number of grid cells (for diagnostics).
    pub fn num_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// The nearest network vertex to `query`, or `None` on an empty network.
    pub fn nearest_node(&self, net: &RoadNetwork, query: Point) -> Option<NodeId> {
        self.nearest_node_within(net, query, f64::INFINITY)
            .map(|(n, _)| n)
    }

    /// The nearest vertex within `max_dist_m` metres, with its distance.
    ///
    /// Searches the query's grid cell, then expands ring by ring. After a
    /// candidate is found the search continues until the ring's minimum
    /// possible distance exceeds the best found so far, which guarantees
    /// exactness despite lon/lat cell geometry (we convert the degree
    /// extent of a ring to metres conservatively).
    pub fn nearest_node_within(
        &self,
        net: &RoadNetwork,
        query: Point,
        max_dist_m: f64,
    ) -> Option<(NodeId, f64)> {
        if self.items.is_empty() {
            return None;
        }
        let (qx, qy) = self.cell_coords(query);
        let mut best: Option<(NodeId, f64)> = None;
        let max_ring = self.cols.max(self.rows);
        // Metres per degree, conservatively small so rings are not cut off
        // too early (cos(lat) shrinks the lon metric; use the smaller of
        // the two axes' scale).
        let lat_m_per_deg = 110_574.0;
        let lon_m_per_deg = 111_320.0 * query.lat.to_radians().cos().abs().max(0.2);

        for ring in 0..=max_ring {
            // Lower bound of distance to any cell in this ring.
            if ring >= 1 {
                let ring_deg_w = (ring - 1) as f64 * self.cell_w;
                let ring_deg_h = (ring - 1) as f64 * self.cell_h;
                let min_possible = (ring_deg_w * lon_m_per_deg).min(ring_deg_h * lat_m_per_deg);
                if let Some((_, bd)) = best {
                    if min_possible > bd {
                        break;
                    }
                }
                if min_possible > max_dist_m {
                    break;
                }
            }
            self.for_ring_cells(qx, qy, ring, |cx, cy| {
                for &node in self.bucket(cx, cy) {
                    let d = haversine_m(net.point(node), query);
                    if d <= max_dist_m && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((node, d));
                    }
                }
            });
        }
        best
    }

    /// All vertices within `radius_m` metres of `query`.
    pub fn nodes_within(&self, net: &RoadNetwork, query: Point, radius_m: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        if self.items.is_empty() {
            return out;
        }
        let lat_m_per_deg = 110_574.0;
        let lon_m_per_deg = 111_320.0 * query.lat.to_radians().cos().abs().max(0.2);
        let dx_deg = radius_m / lon_m_per_deg;
        let dy_deg = radius_m / lat_m_per_deg;
        let (x0, y0) = self.cell_coords(Point::new(query.lon - dx_deg, query.lat - dy_deg));
        let (x1, y1) = self.cell_coords(Point::new(query.lon + dx_deg, query.lat + dy_deg));
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                for &node in self.bucket(cx, cy) {
                    if haversine_m(net.point(node), query) <= radius_m {
                        out.push(node);
                    }
                }
            }
        }
        out
    }

    fn for_ring_cells(&self, qx: usize, qy: usize, ring: usize, mut f: impl FnMut(usize, usize)) {
        if ring == 0 {
            f(qx, qy);
            return;
        }
        let r = ring as isize;
        let (qx, qy) = (qx as isize, qy as isize);
        for dx in -r..=r {
            for dy in [-r, r] {
                let (cx, cy) = (qx + dx, qy + dy);
                if cx >= 0 && cy >= 0 && (cx as usize) < self.cols && (cy as usize) < self.rows {
                    f(cx as usize, cy as usize);
                }
            }
        }
        for dy in (-r + 1)..r {
            for dx in [-r, r] {
                let (cx, cy) = (qx + dx, qy + dy);
                if cx >= 0 && cy >= 0 && (cx as usize) < self.cols && (cy as usize) < self.rows {
                    f(cx as usize, cy as usize);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{EdgeSpec, GraphBuilder};
    use crate::category::RoadCategory;

    /// A g×g lattice of nodes spaced 0.01° apart, fully connected as a grid.
    fn grid_network(g: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..g {
            for x in 0..g {
                ids.push(b.add_node(Point::new(144.0 + x as f64 * 0.01, -37.0 - y as f64 * 0.01)));
            }
        }
        for y in 0..g {
            for x in 0..g {
                let i = y * g + x;
                if x + 1 < g {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + 1],
                        EdgeSpec::category(RoadCategory::Residential),
                    );
                }
                if y + 1 < g {
                    b.add_bidirectional(
                        ids[i],
                        ids[i + g],
                        EdgeSpec::category(RoadCategory::Residential),
                    );
                }
            }
        }
        b.build()
    }

    #[test]
    fn nearest_finds_exact_node() {
        let net = grid_network(10);
        let idx = SpatialIndex::build(&net);
        for node in net.nodes().step_by(7) {
            let found = idx.nearest_node(&net, net.point(node)).unwrap();
            assert_eq!(found, node);
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let net = grid_network(12);
        let idx = SpatialIndex::build(&net);
        let queries = [
            Point::new(144.034, -37.051),
            Point::new(143.99, -37.0), // outside bbox, west
            Point::new(144.2, -37.2),  // outside bbox, southeast
            Point::new(144.055, -37.0449),
        ];
        for q in queries {
            let brute = net
                .nodes()
                .min_by(|&a, &b| {
                    haversine_m(net.point(a), q)
                        .partial_cmp(&haversine_m(net.point(b), q))
                        .unwrap()
                })
                .unwrap();
            let fast = idx.nearest_node(&net, q).unwrap();
            let bd = haversine_m(net.point(brute), q);
            let fd = haversine_m(net.point(fast), q);
            assert!(
                (bd - fd).abs() < 1e-6,
                "query {q}: brute {brute}({bd}) vs fast {fast}({fd})"
            );
        }
    }

    #[test]
    fn nearest_within_rejects_far_queries() {
        let net = grid_network(5);
        let idx = SpatialIndex::build(&net);
        let far = Point::new(150.0, -30.0);
        assert!(idx.nearest_node_within(&net, far, 1000.0).is_none());
        assert!(idx.nearest_node_within(&net, far, f64::INFINITY).is_some());
    }

    #[test]
    fn nodes_within_radius() {
        let net = grid_network(10);
        let idx = SpatialIndex::build(&net);
        let center = net.point(NodeId(55));
        // Grid spacing 0.01° ≈ 1.1 km; a 1.2 km radius catches the node and
        // its 4 lattice neighbours (lon spacing is slightly smaller).
        let close = idx.nodes_within(&net, center, 1_200.0);
        assert!(close.contains(&NodeId(55)));
        assert!(close.len() >= 3, "got {}", close.len());
        let brute: Vec<NodeId> = net
            .nodes()
            .filter(|&n| haversine_m(net.point(n), center) <= 1_200.0)
            .collect();
        assert_eq!(close.len(), brute.len());
    }

    #[test]
    fn empty_network_returns_none() {
        let net = GraphBuilder::new().build();
        let idx = SpatialIndex::build(&net);
        assert!(idx.nearest_node(&net, Point::new(0.0, 0.0)).is_none());
        assert!(idx
            .nodes_within(&net, Point::new(0.0, 0.0), 100.0)
            .is_empty());
    }

    #[test]
    fn single_node_network() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(144.0, -37.0));
        let net = b.build();
        let idx = SpatialIndex::build(&net);
        assert_eq!(
            idx.nearest_node(&net, Point::new(145.0, -38.0)),
            Some(NodeId(0))
        );
    }

    #[test]
    fn density_affects_cell_count() {
        let net = grid_network(16);
        let coarse = SpatialIndex::build_with_density(&net, 64);
        let fine = SpatialIndex::build_with_density(&net, 2);
        assert!(fine.num_cells() > coarse.num_cells());
    }
}
