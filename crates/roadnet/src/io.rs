//! Compact, versioned text serialization for road networks.
//!
//! The format is line-oriented and diff-friendly:
//!
//! ```text
//! arp-roadnet v1
//! meta nodes=<n> edges=<m> non_freeway_factor=<f> speed_scale=<f>
//! n <lon> <lat>                      # one per node, in NodeId order
//! e <tail> <head> <len_m> <speed_kmh> <category_code> <weight_ms>
//! ```
//!
//! Deserialization rebuilds the CSR arrays through [`GraphBuilder`] (with
//! parallel-edge de-duplication disabled, so a round-trip is the identity).

use std::io::{BufRead, BufWriter, Write};

use crate::builder::{EdgeSpec, GraphBuilder};
use crate::category::RoadCategory;
use crate::csr::RoadNetwork;
use crate::error::RoadNetError;
use crate::geo::Point;
use crate::ids::NodeId;
use crate::weight::WeightConfig;

const MAGIC: &str = "arp-roadnet v1";

/// Serializes `net` to the text format.
pub fn write_network<W: Write>(net: &RoadNetwork, writer: W) -> Result<(), RoadNetError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{MAGIC}")?;
    let cfg = net.weight_config();
    writeln!(
        w,
        "meta nodes={} edges={} non_freeway_factor={} speed_scale={}",
        net.num_nodes(),
        net.num_edges(),
        cfg.non_freeway_factor,
        cfg.speed_scale
    )?;
    for node in net.nodes() {
        let p = net.point(node);
        writeln!(w, "n {} {}", p.lon, p.lat)?;
    }
    for e in net.edges() {
        writeln!(
            w,
            "e {} {} {} {} {} {}",
            net.tail(e).0,
            net.head(e).0,
            net.length_m(e),
            net.speed_kmh(e),
            net.category(e).code(),
            net.weight(e)
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes `net` to a `String`.
pub fn network_to_string(net: &RoadNetwork) -> String {
    let mut buf = Vec::new();
    write_network(net, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("format is ascii")
}

fn parse_err(line: usize, message: impl Into<String>) -> RoadNetError {
    RoadNetError::Parse {
        line,
        message: message.into(),
    }
}

/// Deserializes a network from the text format.
pub fn read_network<R: BufRead>(reader: R) -> Result<RoadNetwork, RoadNetError> {
    let mut lines = reader.lines().enumerate();

    let (_, magic) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty input"))
        .and_then(|(i, r)| r.map(|l| (i, l)).map_err(RoadNetError::from))?;
    if magic.trim() != MAGIC {
        return Err(parse_err(1, format!("bad magic {magic:?}")));
    }

    let meta_line = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing meta line"))?
        .1?;
    let mut nodes = None;
    let mut edges = None;
    let mut cfg = WeightConfig::paper();
    for field in meta_line.split_whitespace().skip(1) {
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| parse_err(2, format!("bad meta field {field:?}")))?;
        match k {
            "nodes" => {
                nodes = Some(
                    v.parse::<usize>()
                        .map_err(|e| parse_err(2, e.to_string()))?,
                )
            }
            "edges" => {
                edges = Some(
                    v.parse::<usize>()
                        .map_err(|e| parse_err(2, e.to_string()))?,
                )
            }
            "non_freeway_factor" => {
                cfg.non_freeway_factor = v.parse().map_err(|_| parse_err(2, "bad factor"))?
            }
            "speed_scale" => cfg.speed_scale = v.parse().map_err(|_| parse_err(2, "bad scale"))?,
            _ => return Err(parse_err(2, format!("unknown meta key {k:?}"))),
        }
    }
    let n = nodes.ok_or_else(|| parse_err(2, "missing nodes count"))?;
    let m = edges.ok_or_else(|| parse_err(2, "missing edges count"))?;

    // The file is already de-duplicated; keep it verbatim.
    let mut b = GraphBuilder::with_weight_config(cfg).keep_parallel_edges();
    let _ = (n, m); // counts validated at the end

    let mut node_count = 0usize;
    let mut edge_count = 0usize;
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                let lon: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad node lon"))?;
                let lat: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad node lat"))?;
                b.add_node(Point::new(lon, lat));
                node_count += 1;
            }
            Some("e") => {
                let mut next_u32 = || -> Option<u32> { parts.next().and_then(|s| s.parse().ok()) };
                let tail = next_u32().ok_or_else(|| parse_err(line_no, "bad edge tail"))?;
                let head = next_u32().ok_or_else(|| parse_err(line_no, "bad edge head"))?;
                let len_m: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad edge length"))?;
                let speed: f32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad edge speed"))?;
                let cat_code: u8 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad category code"))?;
                let weight: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line_no, "bad edge weight"))?;
                let category = RoadCategory::from_code(cat_code)
                    .ok_or_else(|| parse_err(line_no, format!("unknown category {cat_code}")))?;
                if tail as usize >= node_count || head as usize >= node_count {
                    return Err(parse_err(line_no, "edge references unseen node"));
                }
                b.add_edge(
                    NodeId(tail),
                    NodeId(head),
                    EdgeSpec {
                        category,
                        speed_kmh: Some(speed),
                        length_m: Some(len_m),
                        weight_ms: Some(weight),
                    },
                );
                edge_count += 1;
            }
            Some(other) => return Err(parse_err(line_no, format!("unknown record {other:?}"))),
            None => {}
        }
    }

    if node_count != n {
        return Err(parse_err(
            0,
            format!("expected {n} nodes, found {node_count}"),
        ));
    }
    if edge_count != m {
        return Err(parse_err(
            0,
            format!("expected {m} edges, found {edge_count}"),
        ));
    }
    Ok(b.build())
}

/// Reads a network from a string.
pub fn network_from_str(s: &str) -> Result<RoadNetwork, RoadNetError> {
    read_network(s.as_bytes())
}

/// Writes a network to a file path.
pub fn save_network(net: &RoadNetwork, path: &std::path::Path) -> Result<(), RoadNetError> {
    let file = std::fs::File::create(path)?;
    write_network(net, file)
}

/// Reads a network from a file path.
pub fn load_network(path: &std::path::Path) -> Result<RoadNetwork, RoadNetError> {
    let file = std::fs::File::open(path)?;
    read_network(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{EdgeSpec, GraphBuilder};

    fn sample_network() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(144.0, -37.0));
        let c = b.add_node(Point::new(144.01, -37.005));
        let d = b.add_node(Point::new(144.02, -37.01));
        b.add_bidirectional(
            a,
            c,
            EdgeSpec::category(RoadCategory::Primary).with_speed(70.0),
        );
        b.add_bidirectional(c, d, EdgeSpec::category(RoadCategory::Motorway));
        b.add_edge(
            d,
            a,
            EdgeSpec::category(RoadCategory::Service).with_length(123.0),
        );
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let net = sample_network();
        let text = network_to_string(&net);
        let back = network_from_str(&text).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_edges(), net.num_edges());
        for node in net.nodes() {
            assert_eq!(back.point(node), net.point(node));
        }
        for e in net.edges() {
            assert_eq!(back.tail(e), net.tail(e));
            assert_eq!(back.head(e), net.head(e));
            assert_eq!(back.weight(e), net.weight(e));
            assert_eq!(back.category(e), net.category(e));
            assert_eq!(back.speed_kmh(e), net.speed_kmh(e));
            assert!((back.length_m(e) - net.length_m(e)).abs() < 1e-3);
        }
    }

    #[test]
    fn roundtrip_preserves_weight_config() {
        let mut b = GraphBuilder::with_weight_config(WeightConfig {
            non_freeway_factor: 1.7,
            speed_scale: 0.8,
        });
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(0.01, 0.0));
        b.add_edge(a, c, EdgeSpec::default());
        let net = b.build();
        let back = network_from_str(&network_to_string(&net)).unwrap();
        assert_eq!(back.weight_config(), net.weight_config());
    }

    #[test]
    fn empty_network_roundtrips() {
        let net = GraphBuilder::new().build();
        let back = network_from_str(&network_to_string(&net)).unwrap();
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = network_from_str("bogus header\n").unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn truncated_input_rejected() {
        let net = sample_network();
        let text = network_to_string(&net);
        // Drop the last line.
        let truncated: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines.join("\n")
        };
        assert!(network_from_str(&truncated).is_err());
    }

    #[test]
    fn edge_before_node_rejected() {
        let text = "arp-roadnet v1\nmeta nodes=1 edges=1 non_freeway_factor=1.3 speed_scale=1\ne 0 5 1 1 0 1\nn 0 0\n";
        let err = network_from_str(text).unwrap_err();
        assert!(err.to_string().contains("unseen node"), "{err}");
    }

    #[test]
    fn unknown_record_rejected() {
        let text =
            "arp-roadnet v1\nmeta nodes=0 edges=0 non_freeway_factor=1.3 speed_scale=1\nx 1 2\n";
        assert!(network_from_str(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let net = sample_network();
        let mut lines: Vec<String> = network_to_string(&net).lines().map(String::from).collect();
        lines.insert(2, "# comment".to_string());
        lines.insert(3, String::new());
        let text = lines.join("\n");
        let back = network_from_str(&text).unwrap();
        assert_eq!(back.num_edges(), net.num_edges());
    }

    #[test]
    fn file_roundtrip() {
        let net = sample_network();
        let dir = std::env::temp_dir().join("arp_roadnet_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.arn");
        save_network(&net, &path).unwrap();
        let back = load_network(&path).unwrap();
        assert_eq!(back.num_edges(), net.num_edges());
        std::fs::remove_file(&path).ok();
    }
}
