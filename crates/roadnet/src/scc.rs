//! Strongly connected components and largest-SCC extraction.
//!
//! OSM extracts routinely contain disconnected fragments (parking lots,
//! clipped ways at the rectangle boundary). Routing engines keep only the
//! largest strongly connected component so every query pair is mutually
//! reachable; we do the same after the road-network constructor runs.
//!
//! The implementation is an iterative Tarjan (explicit stack, no recursion)
//! so deep city networks cannot overflow the call stack.

use crate::builder::{EdgeSpec, GraphBuilder};
use crate::csr::RoadNetwork;
use crate::ids::NodeId;

/// Result of an SCC computation.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// Component id per node, densely numbered `0..num_components`.
    pub component: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
    /// Size (node count) per component id.
    pub sizes: Vec<u32>,
}

impl SccResult {
    /// The component id with the most nodes; `None` for an empty graph.
    pub fn largest_component(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .map(|(i, _)| i as u32)
    }
}

/// Computes strongly connected components with iterative Tarjan.
pub fn strongly_connected_components(net: &RoadNetwork) -> SccResult {
    let n = net.num_nodes();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut num_components = 0usize;
    let mut sizes: Vec<u32> = Vec::new();

    // Explicit DFS frames: (node, out-edge cursor).
    let mut frames: Vec<(u32, u32)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let vi = v as usize;
            let base = net.out_edges(NodeId(v)).next().map(|e| e.0).unwrap_or(0);
            let degree = net.out_degree(NodeId(v)) as u32;
            if *cursor < degree {
                let edge = crate::ids::EdgeId(base + *cursor);
                *cursor += 1;
                let w = net.head(edge).0;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let pi = parent as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
                if lowlink[vi] == index[vi] {
                    // v is an SCC root; pop its component.
                    let cid = num_components as u32;
                    let mut size = 0u32;
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = cid;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    sizes.push(size);
                    num_components += 1;
                }
            }
        }
    }

    SccResult {
        component,
        num_components,
        sizes,
    }
}

/// Extracts the largest strongly connected component as a new network.
///
/// Returns the subnetwork and a mapping `old NodeId -> Option<new NodeId>`.
/// Edge attributes (length, speed, category, weight) are copied verbatim.
pub fn largest_scc_subnetwork(net: &RoadNetwork) -> (RoadNetwork, Vec<Option<NodeId>>) {
    let scc = strongly_connected_components(net);
    let Some(keep) = scc.largest_component() else {
        return (GraphBuilder::new().build(), Vec::new());
    };

    let mut mapping: Vec<Option<NodeId>> = vec![None; net.num_nodes()];
    let mut b = GraphBuilder::with_capacity(scc.sizes[keep as usize] as usize, net.num_edges());
    for node in net.nodes() {
        if scc.component[node.index()] == keep {
            mapping[node.index()] = Some(b.add_node(net.point(node)));
        }
    }
    for edge in net.edges() {
        let (t, h) = (net.tail(edge), net.head(edge));
        if let (Some(nt), Some(nh)) = (mapping[t.index()], mapping[h.index()]) {
            b.add_edge(
                nt,
                nh,
                EdgeSpec {
                    category: net.category(edge),
                    speed_kmh: Some(net.speed_kmh(edge)),
                    length_m: Some(net.length_m(edge) as f64),
                    weight_ms: Some(net.weight(edge)),
                },
            );
        }
    }
    (b.build(), mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::RoadCategory;
    use crate::geo::Point;

    fn p(i: usize) -> Point {
        Point::new(i as f64 * 0.01, 0.0)
    }

    #[test]
    fn single_cycle_is_one_component() {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..5).map(|i| b.add_node(p(i))).collect();
        for i in 0..5 {
            b.add_edge(ids[i], ids[(i + 1) % 5], EdgeSpec::default());
        }
        let net = b.build();
        let scc = strongly_connected_components(&net);
        assert_eq!(scc.num_components, 1);
        assert_eq!(scc.sizes, vec![5]);
    }

    #[test]
    fn directed_chain_is_all_singletons() {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4).map(|i| b.add_node(p(i))).collect();
        for i in 0..3 {
            b.add_edge(ids[i], ids[i + 1], EdgeSpec::default());
        }
        let net = b.build();
        let scc = strongly_connected_components(&net);
        assert_eq!(scc.num_components, 4);
        assert!(scc.sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn two_cycles_with_bridge() {
        // Cycle {0,1,2} -> bridge -> cycle {3,4,5,6}.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..7).map(|i| b.add_node(p(i))).collect();
        for i in 0..3 {
            b.add_edge(ids[i], ids[(i + 1) % 3], EdgeSpec::default());
        }
        for i in 3..7 {
            b.add_edge(
                ids[i],
                ids[if i == 6 { 3 } else { i + 1 }],
                EdgeSpec::default(),
            );
        }
        b.add_edge(ids[2], ids[3], EdgeSpec::default());
        let net = b.build();
        let scc = strongly_connected_components(&net);
        assert_eq!(scc.num_components, 2);
        let mut sizes = scc.sizes.clone();
        sizes.sort();
        assert_eq!(sizes, vec![3, 4]);
        // Bridge endpoints are in different components.
        assert_ne!(scc.component[2], scc.component[3]);
    }

    #[test]
    fn largest_scc_extraction_keeps_big_cycle() {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..10).map(|i| b.add_node(p(i))).collect();
        // Big bidirectional cycle over 0..6.
        for i in 0..6 {
            b.add_bidirectional(
                ids[i],
                ids[(i + 1) % 6],
                EdgeSpec::category(RoadCategory::Primary),
            );
        }
        // Dangling one-way tail 6 -> 7 -> 8 -> 9.
        for i in 6..9 {
            b.add_edge(ids[i], ids[i + 1], EdgeSpec::default());
        }
        b.add_edge(ids[0], ids[6], EdgeSpec::default());
        let net = b.build();
        let (sub, mapping) = largest_scc_subnetwork(&net);
        assert_eq!(sub.num_nodes(), 6);
        assert_eq!(sub.num_edges(), 12);
        assert!(mapping[7].is_none());
        assert!(mapping[0].is_some());
        assert!(sub.check_invariants());
        // Attributes preserved.
        let e = sub.edges().next().unwrap();
        assert!(sub.weight(e) > 0);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let net = GraphBuilder::new().build();
        let scc = strongly_connected_components(&net);
        assert_eq!(scc.num_components, 0);
        assert!(scc.largest_component().is_none());
        let (sub, mapping) = largest_scc_subnetwork(&net);
        assert_eq!(sub.num_nodes(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    fn deep_cycle_does_not_overflow_stack() {
        // 200k-node directed cycle: recursion would overflow, iteration must not.
        let n = 200_000;
        let mut b = GraphBuilder::with_capacity(n, n);
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                b.add_node(Point::new(
                    (i % 1000) as f64 * 1e-4,
                    (i / 1000) as f64 * 1e-4,
                ))
            })
            .collect();
        for i in 0..n {
            b.add_edge(ids[i], ids[(i + 1) % n], EdgeSpec::default().with_weight(1));
        }
        let net = b.build();
        let scc = strongly_connected_components(&net);
        assert_eq!(scc.num_components, 1);
        assert_eq!(scc.sizes[0] as usize, n);
    }
}
