//! The immutable compressed-sparse-row road network.
//!
//! Edges are sorted by tail vertex, so [`RoadNetwork::out_edges`] of a node
//! is a contiguous range of [`EdgeId`]s; a second offset array groups edge
//! ids by head vertex for backward searches. All edge attributes live in
//! parallel columnar arrays indexed by `EdgeId`, which keeps hot search
//! loops cache-friendly (only the weight column is touched by Dijkstra).

use crate::category::RoadCategory;
use crate::geo::{BoundingBox, Point};
use crate::ids::{EdgeId, NodeId};
use crate::weight::{Weight, WeightConfig};

/// An immutable directed road network in CSR form.
///
/// Construct one with [`crate::GraphBuilder`], the OSM constructor in
/// `arp-osm`, or a city generator in `arp-citygen`.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    points: Vec<Point>,
    fwd_offsets: Vec<u32>,
    edge_tail: Vec<NodeId>,
    edge_head: Vec<NodeId>,
    edge_len_m: Vec<f32>,
    edge_speed_kmh: Vec<f32>,
    edge_category: Vec<RoadCategory>,
    edge_weight_ms: Vec<Weight>,
    bwd_offsets: Vec<u32>,
    bwd_edges: Vec<EdgeId>,
    bbox: BoundingBox,
    weight_config: WeightConfig,
}

impl RoadNetwork {
    /// Assembles a network from raw parts. Intended for use by
    /// [`crate::GraphBuilder`] and the serialization layer; invariants are
    /// checked with debug assertions.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        points: Vec<Point>,
        fwd_offsets: Vec<u32>,
        edge_tail: Vec<NodeId>,
        edge_head: Vec<NodeId>,
        edge_len_m: Vec<f32>,
        edge_speed_kmh: Vec<f32>,
        edge_category: Vec<RoadCategory>,
        edge_weight_ms: Vec<Weight>,
        bwd_offsets: Vec<u32>,
        bwd_edges: Vec<EdgeId>,
        bbox: BoundingBox,
        weight_config: WeightConfig,
    ) -> Self {
        debug_assert_eq!(fwd_offsets.len(), points.len() + 1);
        debug_assert_eq!(bwd_offsets.len(), points.len() + 1);
        debug_assert_eq!(edge_tail.len(), edge_head.len());
        debug_assert_eq!(edge_tail.len(), edge_weight_ms.len());
        debug_assert_eq!(edge_tail.len(), bwd_edges.len());
        let net = RoadNetwork {
            points,
            fwd_offsets,
            edge_tail,
            edge_head,
            edge_len_m,
            edge_speed_kmh,
            edge_category,
            edge_weight_ms,
            bwd_offsets,
            bwd_edges,
            bbox,
            weight_config,
        };
        debug_assert!(net.check_invariants());
        net
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_head.len()
    }

    /// True if the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Coordinates of `node`.
    #[inline]
    pub fn point(&self, node: NodeId) -> Point {
        self.points[node.index()]
    }

    /// All node coordinates, indexed by `NodeId`.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Bounding box of all vertices.
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// The travel-time model the edge weights were derived with.
    pub fn weight_config(&self) -> WeightConfig {
        self.weight_config
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.points.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_head.len() as u32).map(EdgeId)
    }

    /// Out-edges of `node` as a contiguous id range.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        let lo = self.fwd_offsets[node.index()];
        let hi = self.fwd_offsets[node.index() + 1];
        (lo..hi).map(EdgeId)
    }

    /// Edge ids whose head is `node`.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        let lo = self.bwd_offsets[node.index()] as usize;
        let hi = self.bwd_offsets[node.index() + 1] as usize;
        self.bwd_edges[lo..hi].iter().copied()
    }

    /// Number of out-edges of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        (self.fwd_offsets[node.index() + 1] - self.fwd_offsets[node.index()]) as usize
    }

    /// Number of in-edges of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        (self.bwd_offsets[node.index() + 1] - self.bwd_offsets[node.index()]) as usize
    }

    /// Tail (source vertex) of `edge`.
    #[inline]
    pub fn tail(&self, edge: EdgeId) -> NodeId {
        self.edge_tail[edge.index()]
    }

    /// Head (target vertex) of `edge`.
    #[inline]
    pub fn head(&self, edge: EdgeId) -> NodeId {
        self.edge_head[edge.index()]
    }

    /// Travel time of `edge` in milliseconds.
    #[inline]
    pub fn weight(&self, edge: EdgeId) -> Weight {
        self.edge_weight_ms[edge.index()]
    }

    /// Geometric length of `edge` in metres.
    #[inline]
    pub fn length_m(&self, edge: EdgeId) -> f32 {
        self.edge_len_m[edge.index()]
    }

    /// Speed limit of `edge` in km/h.
    #[inline]
    pub fn speed_kmh(&self, edge: EdgeId) -> f32 {
        self.edge_speed_kmh[edge.index()]
    }

    /// Road category of `edge`.
    #[inline]
    pub fn category(&self, edge: EdgeId) -> RoadCategory {
        self.edge_category[edge.index()]
    }

    /// The full weight column; useful for building private weight overlays
    /// (the Penalty technique and the Google-like provider both copy it).
    pub fn weights(&self) -> &[Weight] {
        &self.edge_weight_ms
    }

    /// Finds an edge `tail -> head` if one exists (after builder
    /// de-duplication there is at most one).
    pub fn find_edge(&self, tail: NodeId, head: NodeId) -> Option<EdgeId> {
        self.out_edges(tail).find(|&e| self.head(e) == head)
    }

    /// The reverse edge `head -> tail` of `edge`, if the road is two-way.
    pub fn reverse_edge(&self, edge: EdgeId) -> Option<EdgeId> {
        self.find_edge(self.head(edge), self.tail(edge))
    }

    /// Maximum speed over all edges in km/h; used as the A* heuristic speed.
    pub fn max_speed_kmh(&self) -> f32 {
        self.edge_speed_kmh.iter().fold(1.0f32, |a, &b| a.max(b))
    }

    /// Verifies the structural invariants of the CSR arrays. Used by debug
    /// assertions and by property tests.
    pub fn check_invariants(&self) -> bool {
        let n = self.num_nodes();
        let m = self.num_edges();
        if self.fwd_offsets.len() != n + 1 || self.bwd_offsets.len() != n + 1 {
            return false;
        }
        if self.fwd_offsets[0] != 0 || self.fwd_offsets[n] as usize != m {
            return false;
        }
        if self.bwd_offsets[0] != 0 || self.bwd_offsets[n] as usize != m {
            return false;
        }
        if self.fwd_offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        if self.bwd_offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        // Every edge's tail matches its CSR bucket.
        for v in 0..n {
            let lo = self.fwd_offsets[v] as usize;
            let hi = self.fwd_offsets[v + 1] as usize;
            for e in lo..hi {
                if self.edge_tail[e].index() != v {
                    return false;
                }
                if self.edge_head[e].index() >= n {
                    return false;
                }
            }
            let blo = self.bwd_offsets[v] as usize;
            let bhi = self.bwd_offsets[v + 1] as usize;
            for be in blo..bhi {
                let e = self.bwd_edges[be];
                if e.index() >= m || self.edge_head[e.index()].index() != v {
                    return false;
                }
            }
        }
        true
    }

    /// Total length of all edges in kilometres — a handy summary statistic.
    pub fn total_length_km(&self) -> f64 {
        self.edge_len_m.iter().map(|&l| l as f64).sum::<f64>() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{EdgeSpec, GraphBuilder};

    fn line_graph(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(Point::new(i as f64 * 0.01, 0.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_bidirectional(w[0], w[1], EdgeSpec::category(RoadCategory::Primary));
        }
        b.build()
    }

    #[test]
    fn invariants_hold_for_line_graph() {
        let net = line_graph(10);
        assert!(net.check_invariants());
        assert_eq!(net.num_nodes(), 10);
        assert_eq!(net.num_edges(), 18);
    }

    #[test]
    fn degrees_of_line_graph() {
        let net = line_graph(5);
        assert_eq!(net.out_degree(NodeId(0)), 1);
        assert_eq!(net.out_degree(NodeId(2)), 2);
        assert_eq!(net.in_degree(NodeId(2)), 2);
        assert_eq!(net.in_degree(NodeId(4)), 1);
    }

    #[test]
    fn find_edge_and_reverse() {
        let net = line_graph(3);
        let e = net.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(net.tail(e), NodeId(0));
        assert_eq!(net.head(e), NodeId(1));
        let r = net.reverse_edge(e).unwrap();
        assert_eq!(net.tail(r), NodeId(1));
        assert_eq!(net.head(r), NodeId(0));
        assert!(net.find_edge(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn edge_attribute_access() {
        let net = line_graph(3);
        for e in net.edges() {
            assert!(net.weight(e) > 0);
            assert!(net.length_m(e) > 0.0);
            assert_eq!(net.category(e), RoadCategory::Primary);
            assert_eq!(net.speed_kmh(e), RoadCategory::Primary.default_speed_kmh());
        }
    }

    #[test]
    fn nodes_and_edges_iterators() {
        let net = line_graph(4);
        assert_eq!(net.nodes().count(), 4);
        assert_eq!(net.edges().count(), net.num_edges());
        assert_eq!(net.weights().len(), net.num_edges());
    }

    #[test]
    fn max_speed_is_primary_default() {
        let net = line_graph(3);
        assert_eq!(
            net.max_speed_kmh(),
            RoadCategory::Primary.default_speed_kmh()
        );
    }

    #[test]
    fn total_length_positive() {
        let net = line_graph(3);
        assert!(net.total_length_km() > 0.0);
    }
}
