//! Road categories, default speeds and OSM `highway=*` tag mapping.
//!
//! The paper's pipeline derives edge travel time from the road's maximum
//! speed; when OSM carries no explicit `maxspeed` tag the category default
//! is used. Categories also drive the ×1.3 non-freeway calibration (§3) and
//! the "wider roads" perception feature (§4.2).

use std::fmt;
use std::str::FromStr;

/// Functional class of a road segment, mirroring the OSM `highway=*` scheme.
///
/// Ordering is from most to least important; `Motorway < Residential` in the
/// derived `Ord` sense (lower discriminant = more important road).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum RoadCategory {
    /// Grade-separated freeway / motorway.
    Motorway,
    /// Motorway on/off ramp.
    MotorwayLink,
    /// Major inter-city road that is not a motorway.
    Trunk,
    /// Major arterial within a city.
    Primary,
    /// Secondary arterial.
    Secondary,
    /// Connector between arterials and local streets.
    Tertiary,
    /// Residential street.
    Residential,
    /// Minor road with unknown classification.
    Unclassified,
    /// Access/service road (parking aisles, driveways).
    Service,
}

/// All categories, in importance order. Useful for exhaustive iteration in
/// tests and statistics.
pub const ALL_CATEGORIES: [RoadCategory; 9] = [
    RoadCategory::Motorway,
    RoadCategory::MotorwayLink,
    RoadCategory::Trunk,
    RoadCategory::Primary,
    RoadCategory::Secondary,
    RoadCategory::Tertiary,
    RoadCategory::Residential,
    RoadCategory::Unclassified,
    RoadCategory::Service,
];

impl RoadCategory {
    /// Default maximum speed in km/h when no `maxspeed` tag is present.
    /// Values follow common OSM routing-profile defaults.
    pub fn default_speed_kmh(self) -> f32 {
        match self {
            RoadCategory::Motorway => 100.0,
            RoadCategory::MotorwayLink => 60.0,
            RoadCategory::Trunk => 80.0,
            RoadCategory::Primary => 60.0,
            RoadCategory::Secondary => 60.0,
            RoadCategory::Tertiary => 50.0,
            RoadCategory::Residential => 40.0,
            RoadCategory::Unclassified => 40.0,
            RoadCategory::Service => 20.0,
        }
    }

    /// True for freeway-class roads, which are exempt from the paper's ×1.3
    /// intersection/turn calibration factor (§3: "for each road segment that
    /// is not a freeway/motorway, we multiply the edge weight by 1.3").
    pub fn is_freeway(self) -> bool {
        matches!(self, RoadCategory::Motorway | RoadCategory::MotorwayLink)
    }

    /// Typical number of lanes per direction, used as the "wide roads"
    /// perception feature ("highest rated path follows wide roads", §4.2).
    pub fn typical_lanes(self) -> u8 {
        match self {
            RoadCategory::Motorway => 3,
            RoadCategory::Trunk => 3,
            RoadCategory::MotorwayLink | RoadCategory::Primary => 2,
            RoadCategory::Secondary => 2,
            RoadCategory::Tertiary => 1,
            RoadCategory::Residential | RoadCategory::Unclassified | RoadCategory::Service => 1,
        }
    }

    /// A `[0, 1]` score of how "major" the road feels to a driver; 1.0 is a
    /// motorway, 0.0 a service alley.
    pub fn width_score(self) -> f64 {
        match self {
            RoadCategory::Motorway => 1.0,
            RoadCategory::Trunk => 0.9,
            RoadCategory::MotorwayLink => 0.7,
            RoadCategory::Primary => 0.75,
            RoadCategory::Secondary => 0.6,
            RoadCategory::Tertiary => 0.45,
            RoadCategory::Residential => 0.25,
            RoadCategory::Unclassified => 0.2,
            RoadCategory::Service => 0.05,
        }
    }

    /// The OSM `highway=*` tag value for this category.
    pub fn osm_tag(self) -> &'static str {
        match self {
            RoadCategory::Motorway => "motorway",
            RoadCategory::MotorwayLink => "motorway_link",
            RoadCategory::Trunk => "trunk",
            RoadCategory::Primary => "primary",
            RoadCategory::Secondary => "secondary",
            RoadCategory::Tertiary => "tertiary",
            RoadCategory::Residential => "residential",
            RoadCategory::Unclassified => "unclassified",
            RoadCategory::Service => "service",
        }
    }

    /// Parses an OSM `highway=*` tag value. Returns `None` for values that
    /// are not drivable roads (footways, cycleways, …), which the road
    /// network constructor must skip.
    pub fn from_osm_tag(tag: &str) -> Option<RoadCategory> {
        Some(match tag {
            "motorway" => RoadCategory::Motorway,
            "motorway_link" => RoadCategory::MotorwayLink,
            "trunk" | "trunk_link" => RoadCategory::Trunk,
            "primary" | "primary_link" => RoadCategory::Primary,
            "secondary" | "secondary_link" => RoadCategory::Secondary,
            "tertiary" | "tertiary_link" => RoadCategory::Tertiary,
            "residential" | "living_street" => RoadCategory::Residential,
            "unclassified" | "road" => RoadCategory::Unclassified,
            "service" => RoadCategory::Service,
            _ => return None,
        })
    }

    /// Compact single-byte code used by the text serialization format.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`RoadCategory::code`].
    pub fn from_code(code: u8) -> Option<RoadCategory> {
        ALL_CATEGORIES.get(code as usize).copied()
    }
}

impl fmt::Display for RoadCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.osm_tag())
    }
}

impl FromStr for RoadCategory {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RoadCategory::from_osm_tag(s).ok_or_else(|| format!("unknown road category: {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osm_tag_roundtrip() {
        for &cat in &ALL_CATEGORIES {
            assert_eq!(RoadCategory::from_osm_tag(cat.osm_tag()), Some(cat));
            assert_eq!(cat.osm_tag().parse::<RoadCategory>().unwrap(), cat);
        }
    }

    #[test]
    fn code_roundtrip() {
        for &cat in &ALL_CATEGORIES {
            assert_eq!(RoadCategory::from_code(cat.code()), Some(cat));
        }
        assert_eq!(RoadCategory::from_code(200), None);
    }

    #[test]
    fn non_drivable_tags_are_rejected() {
        for tag in ["footway", "cycleway", "path", "steps", "pedestrian", ""] {
            assert_eq!(RoadCategory::from_osm_tag(tag), None, "{tag}");
        }
    }

    #[test]
    fn link_tags_map_to_parent_class() {
        assert_eq!(
            RoadCategory::from_osm_tag("primary_link"),
            Some(RoadCategory::Primary)
        );
        assert_eq!(
            RoadCategory::from_osm_tag("trunk_link"),
            Some(RoadCategory::Trunk)
        );
    }

    #[test]
    fn freeway_classification() {
        assert!(RoadCategory::Motorway.is_freeway());
        assert!(RoadCategory::MotorwayLink.is_freeway());
        assert!(!RoadCategory::Trunk.is_freeway());
        assert!(!RoadCategory::Residential.is_freeway());
    }

    #[test]
    fn speeds_decrease_with_importance() {
        assert!(
            RoadCategory::Motorway.default_speed_kmh()
                > RoadCategory::Residential.default_speed_kmh()
        );
        for &cat in &ALL_CATEGORIES {
            assert!(cat.default_speed_kmh() > 0.0);
        }
    }

    #[test]
    fn width_scores_are_normalized_and_monotone_at_extremes() {
        for &cat in &ALL_CATEGORIES {
            let w = cat.width_score();
            assert!((0.0..=1.0).contains(&w));
        }
        assert!(RoadCategory::Motorway.width_score() > RoadCategory::Service.width_score());
    }

    #[test]
    fn ordering_puts_motorway_first() {
        assert!(RoadCategory::Motorway < RoadCategory::Residential);
        let mut v = [
            RoadCategory::Service,
            RoadCategory::Motorway,
            RoadCategory::Primary,
        ];
        v.sort();
        assert_eq!(v[0], RoadCategory::Motorway);
    }
}
