#![deny(missing_docs)]
//! # arp-roadnet
//!
//! Road-network substrate for the alternative-route-planning study.
//!
//! This crate provides the weighted directed graph model that every other
//! crate in the workspace builds on:
//!
//! * [`ids`] — strongly typed node/edge identifiers,
//! * [`geo`] — WGS-84 points, bounding boxes and haversine geometry,
//! * [`category`] — road categories with default speeds and OSM tag mapping,
//! * [`weight`] — travel-time weighting, including the paper's ×1.3
//!   non-freeway calibration (§3 of the paper),
//! * [`builder`] — incremental graph construction with de-duplication,
//! * [`csr`] — the immutable compressed-sparse-row [`RoadNetwork`],
//! * [`spatial`] — a uniform-grid nearest-vertex index ("geo-coordinate
//!   matching" in the paper's query processor),
//! * [`scc`] — strongly connected components and largest-SCC extraction,
//! * [`io`] — a compact, versioned text serialization.
//!
//! The design follows the conventions of open-source routing engines: node
//! and edge attributes live in parallel columnar arrays indexed by
//! [`ids::EdgeId`], edges are grouped by tail vertex so a node's out-edges
//! are a contiguous id range, and a second offset array provides reverse
//! adjacency for backward searches.
//!
//! ```
//! use arp_roadnet::prelude::*;
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(Point::new(144.96, -37.81));
//! let c = b.add_node(Point::new(144.97, -37.81));
//! b.add_edge(a, c, EdgeSpec::category(RoadCategory::Primary));
//! b.add_edge(c, a, EdgeSpec::category(RoadCategory::Primary));
//! let net = b.build();
//! assert_eq!(net.num_nodes(), 2);
//! assert_eq!(net.num_edges(), 2);
//! ```

pub mod builder;
pub mod category;
pub mod csr;
pub mod error;
pub mod geo;
pub mod ids;
pub mod io;
pub mod scc;
pub mod spatial;
pub mod weight;

pub use builder::{EdgeSpec, GraphBuilder};
pub use category::RoadCategory;
pub use csr::RoadNetwork;
pub use error::RoadNetError;
pub use geo::{haversine_m, BoundingBox, Point};
pub use ids::{EdgeId, NodeId};
pub use spatial::SpatialIndex;
pub use weight::{Weight, WeightConfig, WeightView, CLOSED, INFINITY};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::builder::{EdgeSpec, GraphBuilder};
    pub use crate::category::RoadCategory;
    pub use crate::csr::RoadNetwork;
    pub use crate::error::RoadNetError;
    pub use crate::geo::{haversine_m, BoundingBox, Point};
    pub use crate::ids::{EdgeId, NodeId};
    pub use crate::spatial::SpatialIndex;
    pub use crate::weight::{Weight, WeightConfig, WeightView, CLOSED, INFINITY};
}
