//! Travel-time weighting.
//!
//! Edge weights are travel times stored as integral **milliseconds**
//! (`u32`); path costs accumulate in `u64`. Integral weights make search
//! results exactly reproducible across platforms and let distance labels be
//! compared without floating-point tolerance.
//!
//! The paper (§3) computes the travel time of an edge as
//! `length / maxspeed`, then multiplies by **1.3** for every segment that is
//! not a freeway/motorway, to account for intersections, traffic lights and
//! turns. That calibration lives in [`WeightConfig`].

use crate::category::RoadCategory;

/// Edge weight: travel time in milliseconds.
pub type Weight = u32;

/// Path cost / distance label: travel time in milliseconds.
pub type Cost = u64;

/// Sentinel for "unreached" distance labels.
pub const INFINITY: Cost = u64::MAX;

/// Sentinel weight for a **closed** edge (live-traffic incident
/// closures). Search engines skip edges carrying this weight entirely,
/// so a closure behaves like edge removal, not like a very slow road.
///
/// `u32::MAX` never occurs naturally: [`WeightConfig::travel_time_ms`],
/// [`apply_penalty`] and [`scale_weight`] all saturate at
/// `u32::MAX - 1` (which the ESX/Yen drivers use as their own *soft*
/// block — a huge-but-traversable weight — so the two sentinels stay
/// distinct).
pub const CLOSED: Weight = u32::MAX;

/// True if `weight` is the [`CLOSED`] closure sentinel.
#[inline]
pub fn is_closed(weight: Weight) -> bool {
    weight == CLOSED
}

/// A read view over one coherent edge-weight column.
///
/// Everything in the workspace that searches takes an explicit
/// `&[Weight]` indexed by `EdgeId`; this trait names that contract so a
/// live-traffic overlay (an epoch-stamped, materialized weight column)
/// and the plain base column are interchangeable at every engine entry
/// point. `column()` must return a slice of length `num_edges` whose
/// values already include any overlay factors — engines never recompute
/// `base × factor` per relaxation, so an identity overlay costs nothing.
pub trait WeightView {
    /// The effective weight column, indexed by `EdgeId`.
    fn column(&self) -> &[Weight];

    /// Epoch stamp of the column (0 = the base, un-overlaid weights).
    /// Cache keys and substrate-reuse guards compare this to reject
    /// cross-epoch mixing.
    fn epoch(&self) -> u64 {
        0
    }
}

impl WeightView for [Weight] {
    fn column(&self) -> &[Weight] {
        self
    }
}

impl WeightView for Vec<Weight> {
    fn column(&self) -> &[Weight] {
        self
    }
}

impl<T: WeightView + ?Sized> WeightView for &T {
    fn column(&self) -> &[Weight] {
        (**self).column()
    }

    fn epoch(&self) -> u64 {
        (**self).epoch()
    }
}

/// Converts milliseconds to whole display minutes, rounding half-up — the
/// demo system "rounds to display time in minutes" (§3).
pub fn ms_to_display_minutes(ms: Cost) -> u64 {
    (ms + 30_000) / 60_000
}

/// Converts milliseconds to fractional minutes.
pub fn ms_to_minutes_f64(ms: Cost) -> f64 {
    ms as f64 / 60_000.0
}

/// Converts a fractional number of minutes to milliseconds.
pub fn minutes_to_ms(minutes: f64) -> Cost {
    (minutes * 60_000.0).round() as Cost
}

/// Configuration of the travel-time model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightConfig {
    /// Multiplier applied to non-freeway segments to approximate stops at
    /// intersections and traffic lights. The paper uses **1.3**.
    pub non_freeway_factor: f64,
    /// Global speed scale (1.0 = free flow). Lets experiments model uniform
    /// congestion without rebuilding the network.
    pub speed_scale: f64,
}

impl Default for WeightConfig {
    fn default() -> Self {
        WeightConfig {
            non_freeway_factor: 1.3,
            speed_scale: 1.0,
        }
    }
}

impl WeightConfig {
    /// The paper's calibrated model (×1.3 on non-freeway segments).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A naive model with no intersection calibration; used by the
    /// calibration experiment to show why ×1.3 is needed.
    pub fn uncalibrated() -> Self {
        WeightConfig {
            non_freeway_factor: 1.0,
            speed_scale: 1.0,
        }
    }

    /// Travel time in milliseconds for a segment of `length_m` metres,
    /// driven at `speed_kmh`, classified as `category`.
    ///
    /// Returns at least 1 ms for any positive length so that edge weights
    /// are strictly positive (Dijkstra's precondition) and zero for
    /// zero-length segments.
    pub fn travel_time_ms(&self, length_m: f64, speed_kmh: f64, category: RoadCategory) -> Weight {
        if length_m <= 0.0 {
            return 0;
        }
        let speed = (speed_kmh * self.speed_scale).max(1.0);
        let seconds = length_m / (speed / 3.6);
        let factor = if category.is_freeway() {
            1.0
        } else {
            self.non_freeway_factor
        };
        let ms = (seconds * factor * 1000.0).round();
        debug_assert!(ms >= 0.0);
        if ms < 1.0 {
            1
        } else if ms >= u32::MAX as f64 {
            u32::MAX - 1
        } else {
            ms as Weight
        }
    }
}

/// Saturating multiplication of an edge weight by a penalty factor,
/// as used by the Penalty technique (factor 1.4 in the paper).
///
/// The [`CLOSED`] sentinel is preserved: penalizing a closed edge must
/// not turn it back into a (very slow) traversable one.
pub fn apply_penalty(weight: Weight, factor: f64) -> Weight {
    debug_assert!(factor >= 1.0);
    if weight == CLOSED {
        return CLOSED;
    }
    let w = (weight as f64 * factor).round();
    if w >= u32::MAX as f64 {
        u32::MAX - 1
    } else {
        w as Weight
    }
}

/// Saturating multiplication of an edge weight by a live-traffic factor
/// (rush-hour congestion). Like [`apply_penalty`] but keeps a floor of
/// 1 ms on positive weights (Dijkstra's strict-positivity invariant) and
/// preserves both the zero weight of zero-length segments and the
/// [`CLOSED`] sentinel. A factor of exactly `1.0` returns `weight`
/// unchanged, bit for bit — the identity-overlay guarantee.
pub fn scale_weight(weight: Weight, factor: f64) -> Weight {
    debug_assert!(factor >= 1.0);
    if weight == CLOSED || weight == 0 {
        return weight;
    }
    let w = (weight as f64 * factor).round();
    if w >= (u32::MAX - 1) as f64 {
        u32::MAX - 1
    } else if w < 1.0 {
        1
    } else {
        w as Weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeway_has_no_calibration_factor() {
        let cfg = WeightConfig::paper();
        // 1000 m at 100 km/h = 36 s.
        let w = cfg.travel_time_ms(1000.0, 100.0, RoadCategory::Motorway);
        assert_eq!(w, 36_000);
    }

    #[test]
    fn non_freeway_gets_1_3_factor() {
        let cfg = WeightConfig::paper();
        // 1000 m at 50 km/h = 72 s; ×1.3 = 93.6 s.
        let w = cfg.travel_time_ms(1000.0, 50.0, RoadCategory::Tertiary);
        assert_eq!(w, 93_600);
    }

    #[test]
    fn uncalibrated_model_skips_factor() {
        let cfg = WeightConfig::uncalibrated();
        let w = cfg.travel_time_ms(1000.0, 50.0, RoadCategory::Tertiary);
        assert_eq!(w, 72_000);
    }

    #[test]
    fn zero_length_is_zero_weight() {
        let cfg = WeightConfig::paper();
        assert_eq!(cfg.travel_time_ms(0.0, 50.0, RoadCategory::Primary), 0);
        assert_eq!(cfg.travel_time_ms(-5.0, 50.0, RoadCategory::Primary), 0);
    }

    #[test]
    fn tiny_positive_length_is_at_least_one_ms() {
        let cfg = WeightConfig::paper();
        assert!(cfg.travel_time_ms(0.001, 100.0, RoadCategory::Motorway) >= 1);
    }

    #[test]
    fn absurd_lengths_saturate() {
        let cfg = WeightConfig::paper();
        let w = cfg.travel_time_ms(1e15, 1.0, RoadCategory::Service);
        assert_eq!(w, u32::MAX - 1);
    }

    #[test]
    fn speed_scale_slows_traffic() {
        let base = WeightConfig::paper();
        let congested = WeightConfig {
            speed_scale: 0.5,
            ..base
        };
        let w1 = base.travel_time_ms(1000.0, 60.0, RoadCategory::Primary);
        let w2 = congested.travel_time_ms(1000.0, 60.0, RoadCategory::Primary);
        assert!((w2 as f64 / w1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn display_minutes_rounding() {
        assert_eq!(ms_to_display_minutes(0), 0);
        assert_eq!(ms_to_display_minutes(29_999), 0);
        assert_eq!(ms_to_display_minutes(30_000), 1);
        assert_eq!(ms_to_display_minutes(90_000), 2); // 1.5 min rounds up
        assert_eq!(ms_to_display_minutes(minutes_to_ms(24.4)), 24);
    }

    #[test]
    fn minute_conversions_roundtrip() {
        let ms = minutes_to_ms(12.5);
        assert!((ms_to_minutes_f64(ms) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn penalty_multiplies_and_saturates() {
        assert_eq!(apply_penalty(1000, 1.4), 1400);
        assert_eq!(apply_penalty(u32::MAX - 1, 1.4), u32::MAX - 1);
    }

    #[test]
    fn penalty_preserves_the_closed_sentinel() {
        assert_eq!(apply_penalty(CLOSED, 1.4), CLOSED);
        assert!(is_closed(apply_penalty(CLOSED, 1.0)));
    }

    #[test]
    fn scale_weight_identity_is_exact() {
        for w in [0u32, 1, 37, 93_600, u32::MAX - 1, CLOSED] {
            assert_eq!(scale_weight(w, 1.0), w, "{w}");
        }
    }

    #[test]
    fn scale_weight_preserves_sentinels_and_floors() {
        assert_eq!(scale_weight(CLOSED, 2.0), CLOSED);
        assert_eq!(scale_weight(0, 2.0), 0);
        assert_eq!(scale_weight(1000, 1.5), 1500);
        assert_eq!(scale_weight(u32::MAX - 1, 10.0), u32::MAX - 1);
    }

    #[test]
    fn weight_view_over_plain_slices() {
        let column = vec![1u32, 2, 3];
        let view: &dyn WeightView = &column;
        assert_eq!(view.column(), &[1, 2, 3]);
        assert_eq!(view.epoch(), 0);
        let slice: &[Weight] = &column;
        assert_eq!(slice.column(), &[1, 2, 3]);
    }
}
