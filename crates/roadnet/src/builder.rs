//! Incremental construction of a [`RoadNetwork`].
//!
//! The builder accepts nodes and directed edges in any order, optionally
//! de-duplicates parallel edges (keeping the fastest), drops self-loops and
//! then produces the immutable CSR representation in one pass.

use crate::category::RoadCategory;
use crate::csr::RoadNetwork;
use crate::geo::{haversine_m, BoundingBox, Point};
use crate::ids::NodeId;
use crate::weight::{Weight, WeightConfig};

/// Attributes of an edge being added to the builder.
///
/// Length and weight may be left implicit: length defaults to the haversine
/// distance between the endpoints and weight to the travel time derived from
/// the builder's [`WeightConfig`].
#[derive(Clone, Copy, Debug)]
pub struct EdgeSpec {
    /// Road category (drives default speed, calibration and perception).
    pub category: RoadCategory,
    /// Maximum speed in km/h; `None` uses the category default.
    pub speed_kmh: Option<f32>,
    /// Geometric length in metres; `None` derives it from node coordinates.
    pub length_m: Option<f64>,
    /// Pre-computed travel time in ms; `None` derives it from length/speed.
    pub weight_ms: Option<Weight>,
}

impl EdgeSpec {
    /// Spec with only a category; everything else is derived.
    pub fn category(category: RoadCategory) -> Self {
        EdgeSpec {
            category,
            speed_kmh: None,
            length_m: None,
            weight_ms: None,
        }
    }

    /// Sets the speed limit in km/h.
    pub fn with_speed(mut self, kmh: f32) -> Self {
        self.speed_kmh = Some(kmh);
        self
    }

    /// Sets the geometric length in metres.
    pub fn with_length(mut self, m: f64) -> Self {
        self.length_m = Some(m);
        self
    }

    /// Sets the exact edge weight in milliseconds.
    pub fn with_weight(mut self, ms: Weight) -> Self {
        self.weight_ms = Some(ms);
        self
    }
}

impl Default for EdgeSpec {
    fn default() -> Self {
        EdgeSpec::category(RoadCategory::Unclassified)
    }
}

#[derive(Clone, Debug)]
struct PendingEdge {
    tail: u32,
    head: u32,
    length_m: f32,
    speed_kmh: f32,
    category: RoadCategory,
    weight_ms: Weight,
}

/// Incremental builder for [`RoadNetwork`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    points: Vec<Point>,
    edges: Vec<PendingEdge>,
    weight_config: WeightConfig,
    dedup_parallel: bool,
    drop_self_loops: bool,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// A builder with the paper's weight model, parallel-edge
    /// de-duplication and self-loop removal enabled.
    pub fn new() -> Self {
        GraphBuilder {
            points: Vec::new(),
            edges: Vec::new(),
            weight_config: WeightConfig::paper(),
            dedup_parallel: true,
            drop_self_loops: true,
        }
    }

    /// A builder with a custom travel-time model.
    pub fn with_weight_config(config: WeightConfig) -> Self {
        GraphBuilder {
            weight_config: config,
            ..Self::new()
        }
    }

    /// Pre-allocates for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let mut b = Self::new();
        b.points.reserve(nodes);
        b.edges.reserve(edges);
        b
    }

    /// Disables parallel-edge de-duplication (keeps every inserted edge).
    pub fn keep_parallel_edges(mut self) -> Self {
        self.dedup_parallel = false;
        self
    }

    /// Keeps self-loops instead of silently dropping them.
    pub fn keep_self_loops(mut self) -> Self {
        self.drop_self_loops = false;
        self
    }

    /// The travel-time model in effect.
    pub fn weight_config(&self) -> WeightConfig {
        self.weight_config
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of edges added so far (before de-duplication).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node at `point` and returns its id.
    pub fn add_node(&mut self, point: Point) -> NodeId {
        let id = NodeId::from(self.points.len());
        self.points.push(point);
        id
    }

    /// Coordinates of an already-added node.
    pub fn node_point(&self, node: NodeId) -> Point {
        self.points[node.index()]
    }

    /// Adds a directed edge `tail -> head` with the given spec.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added.
    pub fn add_edge(&mut self, tail: NodeId, head: NodeId, spec: EdgeSpec) {
        assert!(tail.index() < self.points.len(), "unknown tail {tail}");
        assert!(head.index() < self.points.len(), "unknown head {head}");
        if self.drop_self_loops && tail == head {
            return;
        }
        let length_m = spec
            .length_m
            .unwrap_or_else(|| haversine_m(self.points[tail.index()], self.points[head.index()]));
        let speed_kmh = spec
            .speed_kmh
            .unwrap_or_else(|| spec.category.default_speed_kmh());
        let weight_ms = spec.weight_ms.unwrap_or_else(|| {
            self.weight_config
                .travel_time_ms(length_m, speed_kmh as f64, spec.category)
        });
        self.edges.push(PendingEdge {
            tail: tail.0,
            head: head.0,
            length_m: length_m as f32,
            speed_kmh,
            category: spec.category,
            weight_ms,
        });
    }

    /// Adds both `a -> b` and `b -> a` with the same spec (two-way street).
    pub fn add_bidirectional(&mut self, a: NodeId, b: NodeId, spec: EdgeSpec) {
        self.add_edge(a, b, spec);
        self.add_edge(b, a, spec);
    }

    /// Finalizes the network into its immutable CSR form.
    pub fn build(mut self) -> RoadNetwork {
        let n = self.points.len();

        if self.dedup_parallel {
            // Sort by (tail, head, weight) and keep the fastest edge of each
            // parallel group. Sorting also establishes CSR order.
            self.edges.sort_unstable_by(|a, b| {
                (a.tail, a.head, a.weight_ms).cmp(&(b.tail, b.head, b.weight_ms))
            });
            self.edges
                .dedup_by(|next, first| next.tail == first.tail && next.head == first.head);
        } else {
            self.edges.sort_by_key(|e| e.tail);
        }

        let m = self.edges.len();
        let mut fwd_offsets = vec![0u32; n + 1];
        for e in &self.edges {
            fwd_offsets[e.tail as usize + 1] += 1;
        }
        for i in 0..n {
            fwd_offsets[i + 1] += fwd_offsets[i];
        }

        let mut edge_tail = Vec::with_capacity(m);
        let mut edge_head = Vec::with_capacity(m);
        let mut edge_len_m = Vec::with_capacity(m);
        let mut edge_speed = Vec::with_capacity(m);
        let mut edge_cat = Vec::with_capacity(m);
        let mut edge_weight = Vec::with_capacity(m);
        for e in &self.edges {
            edge_tail.push(NodeId(e.tail));
            edge_head.push(NodeId(e.head));
            edge_len_m.push(e.length_m);
            edge_speed.push(e.speed_kmh);
            edge_cat.push(e.category);
            edge_weight.push(e.weight_ms);
        }

        // Backward adjacency: edge ids grouped by head vertex.
        let mut bwd_offsets = vec![0u32; n + 1];
        for h in &edge_head {
            bwd_offsets[h.index() + 1] += 1;
        }
        for i in 0..n {
            bwd_offsets[i + 1] += bwd_offsets[i];
        }
        let mut cursor = bwd_offsets.clone();
        let mut bwd_edges = vec![crate::ids::EdgeId::INVALID; m];
        for (i, h) in edge_head.iter().enumerate() {
            let slot = cursor[h.index()] as usize;
            bwd_edges[slot] = crate::ids::EdgeId::from(i);
            cursor[h.index()] += 1;
        }

        let bbox = BoundingBox::of_points(&self.points);

        RoadNetwork::from_parts(
            self.points,
            fwd_offsets,
            edge_tail,
            edge_head,
            edge_len_m,
            edge_speed,
            edge_cat,
            edge_weight,
            bwd_offsets,
            bwd_edges,
            bbox,
            self.weight_config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EdgeId;

    fn p(lon: f64, lat: f64) -> Point {
        Point::new(lon, lat)
    }

    #[test]
    fn build_tiny_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(p(144.0, -37.0));
        let c = b.add_node(p(144.01, -37.0));
        let d = b.add_node(p(144.02, -37.0));
        b.add_edge(a, c, EdgeSpec::category(RoadCategory::Primary));
        b.add_edge(c, d, EdgeSpec::category(RoadCategory::Primary));
        b.add_edge(d, a, EdgeSpec::category(RoadCategory::Primary));
        let net = b.build();
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 3);
        // Out-edges of `a` is exactly one edge heading to c.
        let out: Vec<_> = net.out_edges(a).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(net.head(out[0]), c);
        assert_eq!(net.tail(out[0]), a);
    }

    #[test]
    fn derived_length_matches_haversine() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(p(144.0, -37.0));
        let c = b.add_node(p(144.01, -37.0));
        b.add_edge(a, c, EdgeSpec::category(RoadCategory::Primary));
        let net = b.build();
        let e = net.out_edges(a).next().unwrap();
        let expect = haversine_m(p(144.0, -37.0), p(144.01, -37.0));
        assert!((net.length_m(e) as f64 - expect).abs() < 0.5);
    }

    #[test]
    fn explicit_weight_is_respected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(p(0.0, 0.0));
        let c = b.add_node(p(0.1, 0.0));
        b.add_edge(
            a,
            c,
            EdgeSpec::category(RoadCategory::Primary).with_weight(12345),
        );
        let net = b.build();
        let e = net.out_edges(a).next().unwrap();
        assert_eq!(net.weight(e), 12345);
    }

    #[test]
    fn parallel_edges_deduplicated_keeping_fastest() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(p(0.0, 0.0));
        let c = b.add_node(p(0.1, 0.0));
        b.add_edge(
            a,
            c,
            EdgeSpec::category(RoadCategory::Primary).with_weight(5000),
        );
        b.add_edge(
            a,
            c,
            EdgeSpec::category(RoadCategory::Primary).with_weight(3000),
        );
        b.add_edge(
            a,
            c,
            EdgeSpec::category(RoadCategory::Primary).with_weight(9000),
        );
        let net = b.build();
        assert_eq!(net.num_edges(), 1);
        let e = net.out_edges(a).next().unwrap();
        assert_eq!(net.weight(e), 3000);
    }

    #[test]
    fn keep_parallel_edges_mode() {
        let mut b = GraphBuilder::new().keep_parallel_edges();
        let a = b.add_node(p(0.0, 0.0));
        let c = b.add_node(p(0.1, 0.0));
        b.add_edge(a, c, EdgeSpec::default().with_weight(5000));
        b.add_edge(a, c, EdgeSpec::default().with_weight(3000));
        let net = b.build();
        assert_eq!(net.num_edges(), 2);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(p(0.0, 0.0));
        b.add_edge(a, a, EdgeSpec::default());
        assert_eq!(b.num_edges(), 0);
        let mut b2 = GraphBuilder::new().keep_self_loops();
        let a2 = b2.add_node(p(0.0, 0.0));
        b2.add_edge(a2, a2, EdgeSpec::default().with_length(10.0));
        assert_eq!(b2.num_edges(), 1);
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(p(0.0, 0.0));
        let c = b.add_node(p(0.1, 0.0));
        b.add_bidirectional(a, c, EdgeSpec::category(RoadCategory::Secondary));
        let net = b.build();
        assert_eq!(net.num_edges(), 2);
        assert_eq!(net.out_degree(a), 1);
        assert_eq!(net.out_degree(c), 1);
        assert_eq!(net.in_degree(a), 1);
    }

    #[test]
    #[should_panic(expected = "unknown head")]
    fn unknown_endpoint_panics() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(p(0.0, 0.0));
        b.add_edge(a, NodeId(99), EdgeSpec::default());
    }

    #[test]
    fn backward_adjacency_is_consistent() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(p(0.0, 0.0));
        let n1 = b.add_node(p(0.01, 0.0));
        let n2 = b.add_node(p(0.02, 0.0));
        b.add_edge(n0, n2, EdgeSpec::default());
        b.add_edge(n1, n2, EdgeSpec::default());
        b.add_edge(n2, n0, EdgeSpec::default());
        let net = b.build();
        let incoming: Vec<EdgeId> = net.in_edges(n2).collect();
        assert_eq!(incoming.len(), 2);
        for e in incoming {
            assert_eq!(net.head(e), n2);
        }
        assert_eq!(net.in_edges(n0).count(), 1);
        assert_eq!(net.in_edges(n1).count(), 0);
    }

    #[test]
    fn empty_graph_builds() {
        let net = GraphBuilder::new().build();
        assert_eq!(net.num_nodes(), 0);
        assert_eq!(net.num_edges(), 0);
        assert!(net.bbox().is_empty());
    }
}
