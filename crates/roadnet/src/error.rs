//! Error type for road-network construction and serialization.

use std::fmt;
use std::io;

/// Errors raised while building, validating or (de)serializing a road
/// network.
#[derive(Debug)]
pub enum RoadNetError {
    /// A node id referenced by an edge does not exist.
    UnknownNode(u32),
    /// The graph is empty where a non-empty graph is required.
    EmptyGraph,
    /// A serialized network is malformed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetError::UnknownNode(id) => write!(f, "edge references unknown node {id}"),
            RoadNetError::EmptyGraph => write!(f, "road network is empty"),
            RoadNetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            RoadNetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for RoadNetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoadNetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RoadNetError {
    fn from(e: io::Error) -> Self {
        RoadNetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            RoadNetError::UnknownNode(3).to_string(),
            "edge references unknown node 3"
        );
        assert_eq!(
            RoadNetError::EmptyGraph.to_string(),
            "road network is empty"
        );
        let p = RoadNetError::Parse {
            line: 7,
            message: "bad field".into(),
        };
        assert_eq!(p.to_string(), "parse error at line 7: bad field");
    }

    #[test]
    fn io_error_wraps_source() {
        let e: RoadNetError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
