//! WGS-84 geometry: points, bounding boxes and great-circle distance.
//!
//! The paper's road-network constructor works on raw OSM coordinates
//! (longitude/latitude in degrees) and derives edge lengths from geometry.
//! We use the haversine formula, which is accurate to well under 0.5 % at
//! city scale — more than enough for travel-time estimation.

use std::fmt;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 coordinate: `lon`/`lat` in decimal degrees.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// Longitude in decimal degrees, positive east.
    pub lon: f64,
    /// Latitude in decimal degrees, positive north.
    pub lat: f64,
}

impl Point {
    /// Creates a point from longitude and latitude in decimal degrees.
    #[inline]
    pub fn new(lon: f64, lat: f64) -> Self {
        Point { lon, lat }
    }

    /// Great-circle distance to `other` in metres.
    #[inline]
    pub fn distance_m(&self, other: &Point) -> f64 {
        haversine_m(*self, *other)
    }

    /// Initial bearing from this point towards `other`, in degrees
    /// clockwise from north, in `[0, 360)`.
    pub fn bearing_deg(&self, other: &Point) -> f64 {
        let phi1 = self.lat.to_radians();
        let phi2 = other.lat.to_radians();
        let dl = (other.lon - self.lon).to_radians();
        let y = dl.sin() * phi2.cos();
        let x = phi1.cos() * phi2.sin() - phi1.sin() * phi2.cos() * dl.cos();
        let deg = y.atan2(x).to_degrees();
        (deg + 360.0) % 360.0
    }

    /// Linear interpolation between two points (valid at city scale where
    /// the coordinate plane is locally flat).
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            lon: self.lon + (other.lon - self.lon) * t,
            lat: self.lat + (other.lat - self.lat) * t,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lon, self.lat)
    }
}

/// Great-circle (haversine) distance between two points in metres.
pub fn haversine_m(a: Point, b: Point) -> f64 {
    let phi1 = a.lat.to_radians();
    let phi2 = b.lat.to_radians();
    let dphi = (b.lat - a.lat).to_radians();
    let dlambda = (b.lon - a.lon).to_radians();
    let s = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * s.sqrt().asin()
}

/// Total haversine length of a polyline in metres.
pub fn polyline_length_m(points: &[Point]) -> f64 {
    points.windows(2).map(|w| haversine_m(w[0], w[1])).sum()
}

/// Turn angle at vertex `b` of the polyline segment `a -> b -> c`, in
/// degrees in `[0, 180]`. `0` means continuing straight on; `180` means a
/// full U-turn. Used by the turn-count route-quality feature ("less zig-zag
/// is better", §4.2 of the paper).
pub fn turn_angle_deg(a: Point, b: Point, c: Point) -> f64 {
    let in_bearing = a.bearing_deg(&b);
    let out_bearing = b.bearing_deg(&c);
    let mut diff = (out_bearing - in_bearing).abs();
    if diff > 180.0 {
        diff = 360.0 - diff;
    }
    diff
}

/// An axis-aligned lon/lat rectangle.
///
/// Used by the road-network constructor to clip OSM extracts ("takes a
/// rectangular area as input", §3 of the paper) and by the demo UI to
/// restrict clickable source/target locations.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BoundingBox {
    /// Western edge (minimum longitude).
    pub min_lon: f64,
    /// Southern edge (minimum latitude).
    pub min_lat: f64,
    /// Eastern edge (maximum longitude).
    pub max_lon: f64,
    /// Northern edge (maximum latitude).
    pub max_lat: f64,
}

impl BoundingBox {
    /// An "empty" box that contains nothing and extends under union.
    pub const EMPTY: BoundingBox = BoundingBox {
        min_lon: f64::INFINITY,
        min_lat: f64::INFINITY,
        max_lon: f64::NEG_INFINITY,
        max_lat: f64::NEG_INFINITY,
    };

    /// Creates a box from its corner coordinates.
    pub fn new(min_lon: f64, min_lat: f64, max_lon: f64, max_lat: f64) -> Self {
        BoundingBox {
            min_lon,
            min_lat,
            max_lon,
            max_lat,
        }
    }

    /// True when the box contains no points.
    pub fn is_empty(&self) -> bool {
        self.min_lon > self.max_lon || self.min_lat > self.max_lat
    }

    /// True if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.lon >= self.min_lon
            && p.lon <= self.max_lon
            && p.lat >= self.min_lat
            && p.lat <= self.max_lat
    }

    /// Smallest box containing `self` and `p`.
    pub fn expanded_to(&self, p: Point) -> BoundingBox {
        BoundingBox {
            min_lon: self.min_lon.min(p.lon),
            min_lat: self.min_lat.min(p.lat),
            max_lon: self.max_lon.max(p.lon),
            max_lat: self.max_lat.max(p.lat),
        }
    }

    /// Smallest box containing every point in `points`.
    pub fn of_points(points: &[Point]) -> BoundingBox {
        points
            .iter()
            .fold(BoundingBox::EMPTY, |bb, &p| bb.expanded_to(p))
    }

    /// Centre of the box.
    pub fn center(&self) -> Point {
        Point {
            lon: (self.min_lon + self.max_lon) / 2.0,
            lat: (self.min_lat + self.max_lat) / 2.0,
        }
    }

    /// Width in degrees of longitude.
    pub fn width_deg(&self) -> f64 {
        (self.max_lon - self.min_lon).max(0.0)
    }

    /// Height in degrees of latitude.
    pub fn height_deg(&self) -> f64 {
        (self.max_lat - self.min_lat).max(0.0)
    }

    /// Grows the box by `margin` degrees on every side.
    pub fn padded(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            min_lon: self.min_lon - margin,
            min_lat: self.min_lat - margin,
            max_lon: self.max_lon + margin,
            max_lat: self.max_lat + margin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn melbourne() -> Point {
        Point::new(144.9631, -37.8136)
    }

    fn sydney() -> Point {
        Point::new(151.2093, -33.8688)
    }

    #[test]
    fn haversine_known_distance() {
        // Melbourne -> Sydney is ~714 km great-circle.
        let d = haversine_m(melbourne(), sydney());
        assert!((d - 714_000.0).abs() < 10_000.0, "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        assert_eq!(haversine_m(melbourne(), melbourne()), 0.0);
    }

    #[test]
    fn haversine_symmetric() {
        let d1 = haversine_m(melbourne(), sydney());
        let d2 = haversine_m(sydney(), melbourne());
        assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn small_distance_matches_flat_approximation() {
        // ~111.2 km per degree of latitude.
        let a = Point::new(144.0, -37.0);
        let b = Point::new(144.0, -37.01);
        let d = haversine_m(a, b);
        assert!((d - 1_112.0).abs() < 5.0, "got {d}");
    }

    #[test]
    fn polyline_length_sums_segments() {
        let pts = [
            Point::new(144.0, -37.0),
            Point::new(144.0, -37.01),
            Point::new(144.0, -37.02),
        ];
        let total = polyline_length_m(&pts);
        let direct = haversine_m(pts[0], pts[2]);
        assert!((total - direct).abs() < 1.0);
        assert!(polyline_length_m(&pts[..1]).abs() < 1e-9);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = Point::new(144.0, -37.0);
        let north = Point::new(144.0, -36.9);
        let east = Point::new(144.1, -37.0);
        assert!((origin.bearing_deg(&north) - 0.0).abs() < 1.0);
        assert!((origin.bearing_deg(&east) - 90.0).abs() < 1.0);
    }

    #[test]
    fn turn_angle_straight_and_uturn() {
        let a = Point::new(144.0, -37.0);
        let b = Point::new(144.01, -37.0);
        let c = Point::new(144.02, -37.0);
        assert!(turn_angle_deg(a, b, c) < 1.0);
        assert!(turn_angle_deg(a, b, a) > 179.0);
    }

    #[test]
    fn turn_angle_right_angle() {
        let a = Point::new(144.0, -37.0);
        let b = Point::new(144.01, -37.0);
        let c = Point::new(144.01, -37.01);
        let t = turn_angle_deg(a, b, c);
        assert!((t - 90.0).abs() < 2.0, "got {t}");
    }

    #[test]
    fn bbox_contains_and_expand() {
        let bb = BoundingBox::new(144.0, -38.0, 145.0, -37.0);
        assert!(bb.contains(Point::new(144.5, -37.5)));
        assert!(!bb.contains(Point::new(143.9, -37.5)));
        assert!(!bb.contains(Point::new(144.5, -36.9)));
        let bigger = bb.expanded_to(Point::new(146.0, -37.5));
        assert!(bigger.contains(Point::new(145.5, -37.5)));
    }

    #[test]
    fn bbox_of_points_and_center() {
        let pts = [
            Point::new(144.0, -38.0),
            Point::new(145.0, -37.0),
            Point::new(144.5, -37.5),
        ];
        let bb = BoundingBox::of_points(&pts);
        assert_eq!(bb.min_lon, 144.0);
        assert_eq!(bb.max_lat, -37.0);
        let c = bb.center();
        assert!((c.lon - 144.5).abs() < 1e-9);
        assert!((c.lat - -37.5).abs() < 1e-9);
    }

    #[test]
    fn empty_bbox_behaviour() {
        assert!(BoundingBox::EMPTY.is_empty());
        assert!(!BoundingBox::EMPTY.contains(Point::new(0.0, 0.0)));
        let bb = BoundingBox::of_points(&[]);
        assert!(bb.is_empty());
    }

    #[test]
    fn padded_grows_box() {
        let bb = BoundingBox::new(1.0, 1.0, 2.0, 2.0).padded(0.5);
        assert!(bb.contains(Point::new(0.6, 0.6)));
        assert!(!bb.contains(Point::new(0.4, 0.6)));
    }

    #[test]
    fn lerp_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, -2.0);
        let m = a.lerp(&b, 0.5);
        assert_eq!(m, Point::new(1.0, -1.0));
    }
}
