//! A sharded LRU + TTL cache for computed route results.
//!
//! Design notes (DESIGN.md §8 has the policy rationale):
//!
//! * **Sharding** — the key hash picks one of N independent shards, each
//!   behind its own `Mutex`, so concurrent requests rarely contend on the
//!   same lock. Capacity is split evenly across shards (rounded up), so
//!   the effective total capacity is `shards * ceil(capacity / shards)` —
//!   report it via [`ShardedCache::capacity`], never exceed it.
//! * **LRU** — each shard keeps an intrusive doubly-linked list threaded
//!   through a slab of entries; get and put are O(1).
//! * **TTL** — entries carry an absolute expiry in cache-clock
//!   milliseconds. Time is an explicit `now_ms` argument rather than an
//!   internal `Instant::now()` so tests (and the property suite) can
//!   drive a manual clock; the serving layer passes milliseconds since
//!   its epoch. An entry written at `t` with TTL `ttl` serves hits while
//!   `now < t + ttl` and counts as *stale* (plus the miss) from then on.
//!   A TTL of zero disables expiry.
//! * **Counters** — hits, misses, evictions, stale and a live-entry gauge
//!   come from [`CacheMetrics`]; detached metrics make all of it free.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use crate::metrics::CacheMetrics;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    expires_at_ms: u64,
    prev: usize,
    next: usize,
}

struct Shard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Shard<K, V> {
        Shard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, index: usize) {
        let (prev, next) = {
            let entry = self.slots[index].as_ref().expect("unlink of free slot");
            (entry.prev, entry.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("bad prev link").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("bad next link").prev = prev,
        }
    }

    fn push_front(&mut self, index: usize) {
        {
            let entry = self.slots[index].as_mut().expect("push of free slot");
            entry.prev = NIL;
            entry.next = self.head;
        }
        match self.head {
            NIL => self.tail = index,
            h => self.slots[h].as_mut().expect("bad head link").prev = index,
        }
        self.head = index;
    }

    fn remove(&mut self, index: usize) -> Entry<K, V> {
        self.unlink(index);
        let entry = self.slots[index].take().expect("double remove");
        self.map.remove(&entry.key);
        self.free.push(index);
        entry
    }

    fn insert_new(&mut self, entry: Entry<K, V>) {
        let index = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(entry);
                i
            }
            None => {
                self.slots.push(Some(entry));
                self.slots.len() - 1
            }
        };
        let key = self.slots[index]
            .as_ref()
            .expect("just inserted")
            .key
            .clone();
        self.map.insert(key, index);
        self.push_front(index);
    }
}

/// A sharded, bounded, time-aware cache. See the module docs for policy.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    ttl_ms: u64,
    metrics: CacheMetrics,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of roughly `capacity` entries split over `shards` shards
    /// with per-entry time-to-live `ttl_ms` (zero = never expire). Both
    /// `capacity` and `shards` are clamped to at least one.
    pub fn new(
        capacity: usize,
        shards: usize,
        ttl_ms: u64,
        metrics: CacheMetrics,
    ) -> ShardedCache<K, V> {
        let shard_count = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shard_count);
        ShardedCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            ttl_ms: if ttl_ms == 0 { u64::MAX } else { ttl_ms },
            metrics,
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() as usize) % self.shards.len();
        &self.shards[index]
    }

    /// Looks up `key` at cache time `now_ms`. A fresh entry is moved to
    /// the front of its shard's LRU list and its value cloned out; an
    /// expired entry is removed (counted stale **and** miss).
    pub fn get(&self, key: &K, now_ms: u64) -> Option<V> {
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        let Some(&index) = shard.map.get(key) else {
            self.metrics.misses.inc();
            return None;
        };
        let expired = shard.slots[index]
            .as_ref()
            .expect("mapped free slot")
            .expires_at_ms
            <= now_ms;
        if expired {
            shard.remove(index);
            self.metrics.entries.add(-1);
            self.metrics.stale.inc();
            self.metrics.misses.inc();
            return None;
        }
        shard.unlink(index);
        shard.push_front(index);
        let value = shard.slots[index]
            .as_ref()
            .expect("mapped free slot")
            .value
            .clone();
        self.metrics.hits.inc();
        Some(value)
    }

    /// Stores `value` under `key` at cache time `now_ms`, evicting the
    /// shard's least-recently-used entry if it is full. Re-putting an
    /// existing key refreshes both its value and its TTL.
    pub fn put(&self, key: K, value: V, now_ms: u64) {
        let expires_at_ms = now_ms.saturating_add(self.ttl_ms);
        let mut shard = self.shard_for(&key).lock().expect("cache shard poisoned");
        if let Some(&index) = shard.map.get(&key) {
            let entry = shard.slots[index].as_mut().expect("mapped free slot");
            entry.value = value;
            entry.expires_at_ms = expires_at_ms;
            shard.unlink(index);
            shard.push_front(index);
            return;
        }
        if shard.map.len() >= shard.capacity {
            let tail = shard.tail;
            debug_assert_ne!(tail, NIL, "full shard with empty LRU list");
            shard.remove(tail);
            self.metrics.entries.add(-1);
            self.metrics.evictions.inc();
        }
        shard.insert_new(Entry {
            key,
            value,
            expires_at_ms,
            prev: NIL,
            next: NIL,
        });
        self.metrics.entries.add(1);
    }

    /// Live entries across all shards (expired-but-unvisited entries
    /// count until a `get` removes them).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The effective total capacity (`shards * per-shard capacity`).
    pub fn capacity(&self) -> usize {
        self.shards.len()
            * self.shards[0]
                .lock()
                .expect("cache shard poisoned")
                .capacity
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The cache's metric handles.
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, shards: usize, ttl_ms: u64) -> ShardedCache<String, u64> {
        ShardedCache::new(capacity, shards, ttl_ms, CacheMetrics::default())
    }

    #[test]
    fn get_after_put_hits_within_ttl() {
        let c = cache(8, 2, 100);
        c.put("a".into(), 1, 0);
        assert_eq!(c.get(&"a".into(), 50), Some(1));
        assert_eq!(c.get(&"a".into(), 99), Some(1));
    }

    #[test]
    fn expired_entries_miss_and_are_removed() {
        let c = cache(8, 2, 100);
        c.put("a".into(), 1, 0);
        assert_eq!(
            c.get(&"a".into(), 100),
            None,
            "expiry is exclusive of t+ttl"
        );
        assert_eq!(c.len(), 0, "expired entry removed on observation");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard so the LRU order is global and observable.
        let c = cache(2, 1, 0);
        c.put("a".into(), 1, 0);
        c.put("b".into(), 2, 1);
        assert_eq!(c.get(&"a".into(), 2), Some(1)); // a is now most recent
        c.put("c".into(), 3, 3); // evicts b
        assert_eq!(c.get(&"b".into(), 4), None);
        assert_eq!(c.get(&"a".into(), 5), Some(1));
        assert_eq!(c.get(&"c".into(), 6), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reput_refreshes_value_and_ttl() {
        let c = cache(4, 1, 100);
        c.put("a".into(), 1, 0);
        c.put("a".into(), 2, 80);
        assert_eq!(c.get(&"a".into(), 150), Some(2), "TTL restarted at re-put");
        assert_eq!(c.len(), 1, "re-put must not duplicate the key");
    }

    #[test]
    fn capacity_never_exceeded_under_churn() {
        let c = cache(16, 4, 0);
        for i in 0..500u64 {
            c.put(format!("k{i}"), i, i);
            assert!(
                c.len() <= c.capacity(),
                "len {} > capacity {}",
                c.len(),
                c.capacity()
            );
        }
    }

    #[test]
    fn counters_track_hits_misses_evictions_stale() {
        let registry = arp_obs::Registry::new();
        let metrics = CacheMetrics::new(&registry);
        let c: ShardedCache<String, u64> = ShardedCache::new(1, 1, 10, metrics);
        c.put("a".into(), 1, 0);
        assert_eq!(c.get(&"a".into(), 5), Some(1)); // hit
        assert_eq!(c.get(&"b".into(), 5), None); // miss
        c.put("b".into(), 2, 5); // evicts a
        assert_eq!(c.get(&"b".into(), 20), None); // stale (+miss)
        assert_eq!(c.metrics().hits.get(), 1);
        assert_eq!(c.metrics().misses.get(), 2);
        assert_eq!(c.metrics().evictions.get(), 1);
        assert_eq!(c.metrics().stale.get(), 1);
        assert_eq!(c.metrics().entries.get(), 0);
    }

    #[test]
    fn zero_ttl_never_expires() {
        let c = cache(4, 1, 0);
        c.put("a".into(), 1, 0);
        assert_eq!(c.get(&"a".into(), u64::MAX - 1), Some(1));
    }

    #[test]
    fn ttl_boundary_is_exclusive_and_reput_refreshes_expiry() {
        // Audit of the documented policy: an entry written at `t` with TTL
        // `ttl` is fresh while `now < t + ttl`, stale at exactly `t + ttl`,
        // and a re-put restarts that window without double-counting the
        // entries gauge.
        let registry = arp_obs::Registry::new();
        let metrics = CacheMetrics::new(&registry);
        let c: ShardedCache<String, u64> = ShardedCache::new(4, 1, 100, metrics);
        c.put("a".into(), 1, 0);
        assert_eq!(c.metrics().entries.get(), 1);
        // Last fresh instant is t + ttl - 1.
        assert_eq!(c.get(&"a".into(), 99), Some(1));
        assert_eq!(c.metrics().stale.get(), 0);
        // Re-put just before expiry restarts the TTL: fresh through 198.
        c.put("a".into(), 2, 99);
        assert_eq!(c.metrics().entries.get(), 1, "re-put must not double count");
        assert_eq!(c.get(&"a".into(), 198), Some(2));
        assert_eq!(c.get(&"a".into(), 199), None, "stale at exactly t + ttl");
        assert_eq!(c.metrics().stale.get(), 1);
        assert_eq!(c.metrics().misses.get(), 1);
        assert_eq!(
            c.metrics().entries.get(),
            0,
            "stale removal decrements the gauge"
        );
        assert_eq!(c.metrics().hits.get(), 2);
    }
}
