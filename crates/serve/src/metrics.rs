//! The serving layer's instrument bundle.
//!
//! All handles come pre-resolved from one [`arp_obs::Registry`] so the hot
//! path never touches the registry lock; `Default` bundles are detached
//! no-ops (the same convention as `arp-core`'s `TechniqueMetrics`).
//!
//! Metric names (all under the `arp_serve_` prefix, documented in
//! DESIGN.md §8):
//!
//! * `arp_serve_queue_depth` — gauge, current worker-queue backlog,
//! * `arp_serve_inflight_requests` — gauge, admitted route requests,
//! * `arp_serve_admitted_total` / `arp_serve_shed_total{reason}` /
//!   `arp_serve_deadline_timeouts_total` — admission outcomes,
//! * `arp_serve_cancellations_total` — requests whose deadline tripped
//!   the cooperative cancel token (in-flight lanes interrupted; the
//!   client may still get a truncated response, so this is **not** a
//!   subset of `deadline_timeouts_total`),
//! * `arp_serve_jobs_total` / `arp_serve_inline_fallback_total` — pool
//!   work, and fan-out lanes that ran on the requester thread because the
//!   queue was full,
//! * `arp_serve_cache_{hits,misses,evictions,stale}_total`,
//!   `arp_serve_cache_entries` — route-cache behaviour,
//! * `arp_serve_cache_epoch_invalidations_total` — cached routes
//!   logically invalidated by a traffic-epoch bump (lazily aged out of
//!   their shards, never swept),
//! * `arp_serve_stage_latency_ms{stage}` — per-stage latency histograms
//!   (`admit`, `cache_probe`, `prepare`, `compute`, `assemble`; the
//!   `prepare` stage is the shared-substrate build, see
//!   [`crate::RouteBackend::prepare`]),
//! * `arp_serve_request_latency_ms` — end-to-end latency histogram.
//!
//! The fault-tolerance layer (DESIGN.md §9) adds:
//!
//! * `arp_serve_degraded_responses_total` — responses served with at
//!   least one failed or breaker-open lane,
//! * `arp_serve_lane_failures_total{technique,reason}` and
//!   `arp_serve_retries_total{technique,outcome}` — resolved per lane by
//!   the service (the technique names come from the backend),
//! * `arp_serve_breaker_state{technique}` /
//!   `arp_serve_breaker_transitions_total` — circuit-breaker telemetry,
//! * `arp_serve_faults_injected_total{site,kind}` — injected failpoints.

use arp_obs::{Counter, Gauge, Histogram, Registry, DEFAULT_LATENCY_BUCKETS_MS};

/// Counters and gauges describing the sharded route cache.
#[derive(Clone, Debug, Default)]
pub struct CacheMetrics {
    /// Fresh entries served from the cache.
    pub hits: Counter,
    /// Lookups that found nothing.
    pub misses: Counter,
    /// Entries evicted to make room (LRU).
    pub evictions: Counter,
    /// Entries found but past their TTL (counted **in addition** to the
    /// miss they become).
    pub stale: Counter,
    /// Current number of live entries.
    pub entries: Gauge,
    /// Entries invalidated by a traffic-epoch bump: every cached route
    /// keyed under an older epoch becomes unreachable the moment the tick
    /// lands (the backend folds the epoch into the lane key), so this
    /// counts logical invalidations — the entries themselves age out of
    /// their shards through the ordinary LRU/TTL machinery, which keeps a
    /// tick O(1) instead of a full-cache sweep.
    pub epoch_invalidations: Counter,
}

impl CacheMetrics {
    /// Resolves the cache instruments from `registry`.
    pub fn new(registry: &Registry) -> CacheMetrics {
        CacheMetrics {
            hits: registry.counter(
                "arp_serve_cache_hits_total",
                "Route-cache lookups answered by a fresh entry.",
                &[],
            ),
            misses: registry.counter(
                "arp_serve_cache_misses_total",
                "Route-cache lookups that found no usable entry.",
                &[],
            ),
            evictions: registry.counter(
                "arp_serve_cache_evictions_total",
                "Route-cache entries evicted by the LRU policy.",
                &[],
            ),
            stale: registry.counter(
                "arp_serve_cache_stale_total",
                "Route-cache entries found but expired (TTL); each also counts as a miss.",
                &[],
            ),
            entries: registry.gauge(
                "arp_serve_cache_entries",
                "Live route-cache entries across all shards.",
                &[],
            ),
            epoch_invalidations: registry.counter(
                "arp_serve_cache_epoch_invalidations_total",
                "Cached routes logically invalidated by a traffic-epoch bump (aged out lazily, not swept).",
                &[],
            ),
        }
    }
}

/// Every instrument of the serving layer, resolved once at construction.
#[derive(Clone, Debug, Default)]
pub struct ServeMetrics {
    /// Worker-queue backlog.
    pub queue_depth: Gauge,
    /// Route requests currently past admission and not yet answered.
    pub inflight: Gauge,
    /// Requests that passed admission.
    pub admitted: Counter,
    /// Requests shed because the in-flight bound was reached.
    pub shed_admission: Counter,
    /// Fan-out lanes shed because the worker queue was full (the lane then
    /// runs inline on the requester thread; see `inline_fallback`).
    pub shed_queue_full: Counter,
    /// Requests abandoned at their deadline with nothing to serve.
    pub timeouts: Counter,
    /// Requests whose deadline tripped the cooperative cancel token,
    /// interrupting in-flight lanes. Counted whether or not a truncated
    /// response could still be served.
    pub cancellations: Counter,
    /// Jobs executed by pool workers.
    pub jobs_executed: Counter,
    /// Fan-out lanes executed inline because the queue was full.
    pub inline_fallback: Counter,
    /// Responses served degraded: at least one lane failed or was
    /// short-circuited by its open breaker, and the rest were served
    /// anyway.
    pub degraded: Counter,
    /// Cache behaviour.
    pub cache: CacheMetrics,
    /// Admission latency (time spent acquiring the in-flight permit).
    pub stage_admit: Histogram,
    /// Cache-probe latency.
    pub stage_cache: Histogram,
    /// Shared-preparation latency ([`crate::RouteBackend::prepare`] —
    /// the substrate build in the demo backend). Observed only for
    /// requests with at least one runnable lane.
    pub stage_prepare: Histogram,
    /// Compute latency (fan-out submit to last lane done).
    pub stage_compute: Histogram,
    /// Response-assembly latency.
    pub stage_assemble: Histogram,
    /// End-to-end request latency.
    pub total: Histogram,
}

impl ServeMetrics {
    /// Resolves every serving instrument from `registry`.
    pub fn new(registry: &Registry) -> ServeMetrics {
        let stage = |name: &str| {
            registry.histogram(
                "arp_serve_stage_latency_ms",
                "Per-stage latency of one route request, in milliseconds.",
                &[("stage", name)],
                &DEFAULT_LATENCY_BUCKETS_MS,
            )
        };
        ServeMetrics {
            queue_depth: registry.gauge(
                "arp_serve_queue_depth",
                "Jobs waiting in the worker pool's bounded queue.",
                &[],
            ),
            inflight: registry.gauge(
                "arp_serve_inflight_requests",
                "Route requests past admission and not yet answered.",
                &[],
            ),
            admitted: registry.counter(
                "arp_serve_admitted_total",
                "Route requests that passed admission control.",
                &[],
            ),
            shed_admission: registry.counter(
                "arp_serve_shed_total",
                "Route requests shed by the serving layer, by reason.",
                &[("reason", "admission_full")],
            ),
            shed_queue_full: registry.counter(
                "arp_serve_shed_total",
                "Route requests shed by the serving layer, by reason.",
                &[("reason", "queue_full")],
            ),
            timeouts: registry.counter(
                "arp_serve_deadline_timeouts_total",
                "Route requests abandoned at their deadline with nothing to serve.",
                &[],
            ),
            cancellations: registry.counter(
                "arp_serve_cancellations_total",
                "Route requests whose deadline tripped the cooperative cancel token.",
                &[],
            ),
            jobs_executed: registry.counter(
                "arp_serve_jobs_total",
                "Jobs executed by the worker pool.",
                &[],
            ),
            inline_fallback: registry.counter(
                "arp_serve_inline_fallback_total",
                "Fan-out lanes executed inline because the worker queue was full.",
                &[],
            ),
            degraded: registry.counter(
                "arp_serve_degraded_responses_total",
                "Responses served with at least one failed or breaker-open lane.",
                &[],
            ),
            cache: CacheMetrics::new(registry),
            stage_admit: stage("admit"),
            stage_cache: stage("cache_probe"),
            stage_prepare: stage("prepare"),
            stage_compute: stage("compute"),
            stage_assemble: stage("assemble"),
            total: registry.histogram(
                "arp_serve_request_latency_ms",
                "End-to-end latency of one route request through the serving layer.",
                &[],
                &DEFAULT_LATENCY_BUCKETS_MS,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_bundle_records_nothing() {
        let m = ServeMetrics::default();
        m.admitted.inc();
        m.queue_depth.set(5);
        m.cache.hits.inc();
        assert_eq!(m.admitted.get(), 0);
        assert_eq!(m.queue_depth.get(), 0);
        assert_eq!(m.cache.hits.get(), 0);
    }

    #[test]
    fn resolved_bundle_lands_in_registry() {
        let registry = Registry::new();
        let m = ServeMetrics::new(&registry);
        m.admitted.inc();
        m.shed_admission.inc();
        m.shed_queue_full.add(2);
        m.cache.hits.add(3);
        m.cancellations.inc();
        assert_eq!(registry.counter_value("arp_serve_admitted_total", &[]), 1);
        assert_eq!(
            registry.counter_value("arp_serve_cancellations_total", &[]),
            1
        );
        assert_eq!(
            registry.counter_value("arp_serve_shed_total", &[("reason", "admission_full")]),
            1
        );
        assert_eq!(
            registry.counter_value("arp_serve_shed_total", &[("reason", "queue_full")]),
            2
        );
        assert_eq!(registry.counter_value("arp_serve_cache_hits_total", &[]), 3);
        let text = registry.render_prometheus();
        assert!(
            text.contains("# TYPE arp_serve_shed_total counter"),
            "{text}"
        );
        assert!(text.contains("arp_serve_stage_latency_ms"), "{text}");
    }
}
