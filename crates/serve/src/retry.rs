//! Retry policy for failed technique lanes.
//!
//! A transiently failed lane gets **one** more chance, under a shared
//! per-request budget, and only when the request can afford it:
//!
//! * **Budget** — at most [`RetryPolicy::budget`] retries per request
//!   across all lanes, so a request with every lane failing cannot
//!   multiply its own cost.
//! * **Headroom** — a retry is only attempted when the remaining
//!   deadline exceeds the backoff *plus* the lane's expected duration
//!   ([`LaneLatency`], a per-technique EWMA fed by completed lanes).
//!   Retrying into a deadline that cannot fit the lane would burn a
//!   worker to produce a guaranteed timeout.
//! * **Backoff** — decorrelated jitter (`min(cap, uniform(base,
//!   3·prev))`), drawn from a seeded splitmix64 stream so tests and
//!   chaos runs are deterministic. No `rand` dependency.
//!
//! Transience is declared by the backend through [`crate::LaneError`]:
//! a malformed query fails identically on every attempt and is never
//! retried, while an injected fault, a panicked worker, or a flaky
//! dependency is worth one more try.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::admission::Deadline;

/// Retry tunables, shared by every request of a service.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum retries per request, across all of its lanes.
    pub budget: u32,
    /// Backoff lower bound (first retry waits at least this long).
    pub backoff_base: Duration,
    /// Backoff upper bound.
    pub backoff_cap: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            budget: 2,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            seed: 0x5eed,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-request retry bookkeeping: the remaining budget and the jitter
/// stream state.
#[derive(Debug)]
pub struct RetryState {
    policy: RetryPolicy,
    remaining: u32,
    prev: Duration,
    rng: u64,
}

impl RetryState {
    /// Fresh state for one request. `stream` decorrelates concurrent
    /// requests (the service passes a per-request sequence number).
    pub fn new(policy: RetryPolicy, stream: u64) -> RetryState {
        RetryState {
            policy,
            remaining: policy.budget,
            prev: policy.backoff_base,
            rng: policy
                .seed
                .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Retries still allowed for this request.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Decides whether a failed lane is worth retrying now. Consumes one
    /// unit of budget and returns the backoff to sleep before the
    /// attempt, or `None` when the budget is spent or the remaining
    /// deadline cannot fit `backoff + expected_lane_ms`.
    pub fn next_attempt(&mut self, deadline: &Deadline, expected_lane_ms: u64) -> Option<Duration> {
        if self.remaining == 0 {
            return None;
        }
        let backoff = self.draw_backoff();
        // An unknown lane duration (no completions yet) still reserves a
        // millisecond so a dead deadline can never justify a retry.
        let needed = backoff + Duration::from_millis(expected_lane_ms.max(1));
        match deadline.remaining() {
            Some(left) if left > needed => {
                self.remaining -= 1;
                Some(backoff)
            }
            _ => None,
        }
    }

    /// Gives back one unit of budget consumed by [`RetryState::next_attempt`]
    /// when the attempt was refused downstream before it ran (the lane's
    /// circuit breaker said no). A refused retry costs nothing, so it must
    /// not starve a later lane of its retry.
    pub fn refund(&mut self) {
        self.remaining = (self.remaining + 1).min(self.policy.budget);
    }

    /// Decorrelated jitter: `min(cap, uniform(base, 3·prev))`, drawn
    /// deterministically from the seeded stream.
    fn draw_backoff(&mut self) -> Duration {
        self.rng = splitmix64(self.rng);
        let unit = (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        let base = self.policy.backoff_base.as_secs_f64();
        let upper = (self.prev.as_secs_f64() * 3.0).max(base);
        let drawn = Duration::from_secs_f64(base + (upper - base) * unit);
        let capped = drawn.min(self.policy.backoff_cap);
        self.prev = capped.max(self.policy.backoff_base);
        capped
    }
}

/// A shareable EWMA of one lane's completion time, in milliseconds —
/// the "expected lane p50" the retry headroom check consults. Detached
/// from any registry; cloning shares the estimate.
#[derive(Clone, Debug, Default)]
pub struct LaneLatency {
    /// EWMA in milliseconds (0 = no observation yet).
    ewma_ms: Arc<AtomicU64>,
}

impl LaneLatency {
    /// A tracker with no observations.
    pub fn new() -> LaneLatency {
        LaneLatency::default()
    }

    /// Folds one completed-lane duration into the estimate
    /// (`new = (3·old + sample) / 4`; the first sample seeds it).
    pub fn observe_ms(&self, sample_ms: u64) {
        let sample = sample_ms.max(1);
        let mut current = self.ewma_ms.load(Ordering::Relaxed);
        loop {
            let next = if current == 0 {
                sample
            } else {
                (3 * current + sample) / 4
            };
            match self.ewma_ms.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current estimate in milliseconds (0 = unknown).
    pub fn estimate_ms(&self) -> u64 {
        self.ewma_ms.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_bounds_total_retries() {
        let policy = RetryPolicy {
            budget: 2,
            ..RetryPolicy::default()
        };
        let mut state = RetryState::new(policy, 0);
        let deadline = Deadline::never();
        assert!(state.next_attempt(&deadline, 1).is_some());
        assert!(state.next_attempt(&deadline, 1).is_some());
        assert!(state.next_attempt(&deadline, 1).is_none(), "budget spent");
    }

    #[test]
    fn no_retry_when_deadline_cannot_fit_the_lane() {
        let mut state = RetryState::new(RetryPolicy::default(), 0);
        // 20 ms left but the lane's p50 is 500 ms: retrying would only
        // manufacture a timeout.
        let deadline = Deadline::after(Duration::from_millis(20));
        assert!(state.next_attempt(&deadline, 500).is_none());
        assert_eq!(
            state.remaining(),
            RetryPolicy::default().budget,
            "a refused attempt must not consume budget"
        );
        // The same deadline easily fits a 1 ms lane.
        assert!(state.next_attempt(&deadline, 1).is_some());
    }

    #[test]
    fn refund_restores_budget_without_exceeding_it() {
        let policy = RetryPolicy {
            budget: 1,
            ..RetryPolicy::default()
        };
        let mut state = RetryState::new(policy, 0);
        let deadline = Deadline::never();
        assert!(state.next_attempt(&deadline, 1).is_some());
        assert_eq!(state.remaining(), 0);
        // The breaker refused the attempt: the budget comes back and a
        // later lane can still retry.
        state.refund();
        assert_eq!(state.remaining(), 1);
        assert!(state.next_attempt(&deadline, 1).is_some());
        // Refunding cannot mint budget beyond the policy's cap.
        state.refund();
        state.refund();
        assert_eq!(state.remaining(), 1);
    }

    #[test]
    fn expired_deadline_never_retries() {
        let mut state = RetryState::new(RetryPolicy::default(), 0);
        let dead = Deadline::after(Duration::ZERO);
        assert!(state.next_attempt(&dead, 1).is_none());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let policy = RetryPolicy {
            budget: 8,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            seed: 99,
        };
        let draw_all = |stream: u64| -> Vec<Duration> {
            let mut state = RetryState::new(policy, stream);
            (0..8)
                .filter_map(|_| state.next_attempt(&Deadline::never(), 1))
                .collect()
        };
        let a = draw_all(7);
        let b = draw_all(7);
        assert_eq!(a, b, "same policy + stream, same backoffs");
        for d in &a {
            assert!(
                *d >= policy.backoff_base && *d <= policy.backoff_cap,
                "{d:?}"
            );
        }
        assert_ne!(draw_all(8), a, "streams decorrelate");
    }

    #[test]
    fn latency_ewma_tracks_and_is_shared() {
        let lat = LaneLatency::new();
        assert_eq!(lat.estimate_ms(), 0);
        lat.observe_ms(100);
        assert_eq!(lat.estimate_ms(), 100, "first sample seeds the EWMA");
        let shared = lat.clone();
        shared.observe_ms(20);
        assert_eq!(lat.estimate_ms(), 80, "(3*100 + 20) / 4");
        for _ in 0..32 {
            lat.observe_ms(20);
        }
        assert!(lat.estimate_ms() <= 25, "EWMA converges to recent samples");
    }
}
