//! Admission control: a bounded in-flight request count and per-request
//! deadlines.
//!
//! The serving layer admits at most `max_inflight` route requests at a
//! time. A request that cannot get a permit is shed immediately — the
//! HTTP layer turns that into `503 Service Unavailable` with a
//! `Retry-After` header — because queueing it would only add latency to
//! work that is already too slow. This is classic load shedding: keep the
//! latency of admitted requests bounded by refusing the excess instead of
//! absorbing it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use arp_obs::Gauge;

/// A point in time after which a request is no longer worth finishing.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Option<Instant>,
}

/// Upper bound on one `Condvar` wait when there is no deadline; waits
/// simply re-arm, so the exact value only bounds wake-up latency in
/// pathological clock scenarios.
const NEVER_WAIT_CHUNK: Duration = Duration::from_secs(3_600);

impl Deadline {
    /// A deadline that never expires.
    pub fn never() -> Deadline {
        Deadline { at: None }
    }

    /// A deadline `timeout` from now. A zero timeout is **already
    /// expired** — "no time at all", not "no deadline". Callers that mean
    /// "disabled" must say so explicitly with [`Deadline::never`]; the
    /// config layer makes that translation once (see
    /// [`crate::service::ServeConfig::request_deadline`]) instead of every
    /// timing primitive re-interpreting zero.
    pub fn after(timeout: Duration) -> Deadline {
        Deadline {
            at: Some(Instant::now() + timeout),
        }
    }

    /// Time left, or `None` once expired. Never-expiring deadlines return
    /// a large chunk suitable for a condvar wait.
    pub fn remaining(&self) -> Option<Duration> {
        match self.at {
            None => Some(NEVER_WAIT_CHUNK),
            Some(at) => {
                let now = Instant::now();
                if now >= at {
                    None
                } else {
                    Some(at - now)
                }
            }
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        match self.at {
            None => false,
            Some(at) => Instant::now() >= at,
        }
    }

    /// Whether this is a never-expiring deadline ([`Deadline::never`]).
    ///
    /// [`Deadline::remaining`] deliberately blurs the distinction by
    /// returning a large wait chunk for `never` — right for condvar
    /// loops, wrong for callers that would turn the chunk into a *real*
    /// time budget (e.g. a search deadline). Those callers check here
    /// first.
    pub fn is_unbounded(&self) -> bool {
        self.at.is_none()
    }
}

/// An adaptive `Retry-After` hint for shed requests.
///
/// A fixed hint herds every shed client back at the same instant, which
/// re-creates the overload that shed them. Instead the hint scales with
/// the pressure that caused the shed — the mean of the in-flight ratio
/// and the queue-backlog ratio — from `base_s` (idle, pressure 0) up to
/// `5 × base_s` (saturated, pressure 1), clamped to a sane [1, 30] s so
/// a misconfigured base can neither spam nor strand clients.
pub fn adaptive_retry_after(
    base_s: u32,
    inflight: usize,
    max_inflight: usize,
    queue_len: usize,
    queue_capacity: usize,
) -> u32 {
    let ratio = |n: usize, d: usize| {
        if d == 0 {
            1.0
        } else {
            (n as f64 / d as f64).min(1.0)
        }
    };
    let pressure = (ratio(inflight, max_inflight) + ratio(queue_len, queue_capacity)) / 2.0;
    let hint = (base_s.max(1) as f64 * (1.0 + 4.0 * pressure)).round() as u32;
    hint.clamp(1, 30)
}

struct AdmissionState {
    inflight: AtomicUsize,
    max_inflight: usize,
    gauge: Gauge,
}

/// A counting gate over in-flight requests.
#[derive(Clone)]
pub struct Admission {
    state: Arc<AdmissionState>,
}

/// Holding a permit is being admitted; dropping it releases the slot.
pub struct Permit {
    state: Arc<AdmissionState>,
}

impl Admission {
    /// A gate admitting at most `max_inflight` concurrent requests (at
    /// least one). The `gauge` mirrors the current in-flight count.
    pub fn new(max_inflight: usize, gauge: Gauge) -> Admission {
        Admission {
            state: Arc::new(AdmissionState {
                inflight: AtomicUsize::new(0),
                max_inflight: max_inflight.max(1),
                gauge,
            }),
        }
    }

    /// Tries to admit one request; `None` means shed it.
    pub fn try_acquire(&self) -> Option<Permit> {
        let state = &self.state;
        let mut current = state.inflight.load(Ordering::Relaxed);
        loop {
            if current >= state.max_inflight {
                return None;
            }
            match state.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    state.gauge.set((current + 1) as i64);
                    return Some(Permit {
                        state: Arc::clone(state),
                    });
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Requests currently admitted.
    pub fn inflight(&self) -> usize {
        self.state.inflight.load(Ordering::Acquire)
    }

    /// The admission bound.
    pub fn max_inflight(&self) -> usize {
        self.state.max_inflight
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let previous = self.state.inflight.fetch_sub(1, Ordering::AcqRel);
        self.state.gauge.set(previous.saturating_sub(1) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_the_bound_and_sheds_beyond() {
        let gate = Admission::new(2, Gauge::default());
        let a = gate.try_acquire().expect("first");
        let _b = gate.try_acquire().expect("second");
        assert!(gate.try_acquire().is_none(), "third should be shed");
        drop(a);
        assert!(gate.try_acquire().is_some(), "slot freed by drop");
    }

    #[test]
    fn gauge_mirrors_inflight() {
        let registry = arp_obs::Registry::new();
        let gauge = registry.gauge("inflight", "", &[]);
        let gate = Admission::new(4, gauge.clone());
        let a = gate.try_acquire().unwrap();
        let b = gate.try_acquire().unwrap();
        assert_eq!(gauge.get(), 2);
        drop(a);
        drop(b);
        assert_eq!(gauge.get(), 0);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn bound_is_at_least_one() {
        let gate = Admission::new(0, Gauge::default());
        assert_eq!(gate.max_inflight(), 1);
        let _p = gate.try_acquire().unwrap();
        assert!(gate.try_acquire().is_none());
    }

    #[test]
    fn concurrent_acquires_never_exceed_the_bound() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let gate = Admission::new(3, Gauge::default());
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let gate = gate.clone();
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Some(permit) = gate.try_acquire() {
                            let seen = gate.inflight();
                            peak.fetch_max(seen, Ordering::SeqCst);
                            assert!(seen <= 3, "inflight {seen} exceeded bound");
                            drop(permit);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn retry_after_scales_with_pressure_and_clamps() {
        // Idle: base passes through.
        assert_eq!(adaptive_retry_after(2, 0, 32, 0, 64), 2);
        // Admission full, queue empty: half pressure → 3× base.
        assert_eq!(adaptive_retry_after(2, 32, 32, 0, 64), 6);
        // Everything saturated: 5× base.
        assert_eq!(adaptive_retry_after(2, 32, 32, 64, 64), 10);
        // Monotonic in queue depth.
        let hints: Vec<u32> = (0..=64)
            .map(|q| adaptive_retry_after(2, 32, 32, q, 64))
            .collect();
        assert!(hints.windows(2).all(|w| w[0] <= w[1]), "{hints:?}");
        // Clamped to [1, 30] even for silly bases.
        assert_eq!(adaptive_retry_after(0, 0, 32, 0, 64), 1);
        assert_eq!(adaptive_retry_after(25, 32, 32, 64, 64), 30);
        // Zero capacities count as full pressure, not a division blow-up.
        assert_eq!(adaptive_retry_after(1, 0, 0, 0, 0), 5);
    }

    #[test]
    fn deadline_semantics() {
        assert!(!Deadline::never().expired());
        assert!(Deadline::never().remaining().is_some());
        // Zero is "no time at all", not "disabled": the request was dead
        // on arrival. Disabling deadlines is the config layer's job
        // (`ServeConfig::request_deadline` maps a zero setting to
        // `Deadline::never()`).
        let zero = Deadline::after(Duration::ZERO);
        assert!(zero.expired(), "zero = already expired");
        assert!(zero.remaining().is_none());
        let d = Deadline::after(Duration::from_millis(10));
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(15));
        assert!(d.expired());
        assert!(d.remaining().is_none());
    }
}
