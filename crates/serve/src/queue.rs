//! A bounded multi-producer multi-consumer queue on `Mutex` + `Condvar`.
//!
//! The queue is the admission boundary of the serving layer: producers
//! never block — [`BoundedQueue::try_push`] fails fast when the queue is
//! at capacity so the caller can shed load (HTTP 503) instead of building
//! an unbounded backlog. Consumers block in [`BoundedQueue::pop`] until
//! work arrives or the queue is closed and drained, which is what makes
//! graceful shutdown possible: close, let workers drain the backlog, join.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use arp_obs::Gauge;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the work.
    Full,
    /// The queue was closed — the pool is shutting down.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with fail-fast producers and blocking consumers.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
    depth: Gauge,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending items (clamped to at
    /// least one). The `depth` gauge tracks the current backlog (detached
    /// gauges are free).
    pub fn new(capacity: usize, depth: Gauge) -> BoundedQueue<T> {
        // Clamp once, then derive both the admission bound and the backing
        // store's pre-allocation from the same value. Clamping them
        // independently let `capacity == 0` admit one item into a
        // zero-capacity allocation.
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
            depth,
        }
    }

    /// Enqueues `item` without blocking, or says why it cannot.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        self.depth.set(state.items.len() as i64);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed **and** drained (returning `None` — the consumer's signal
    /// to exit).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.depth.set(state.items.len() as i64);
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: subsequent pushes fail with [`PushError::Closed`],
    /// consumers drain the backlog and then observe `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Current backlog length.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the backlog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn queue(capacity: usize) -> BoundedQueue<u32> {
        BoundedQueue::new(capacity, Gauge::default())
    }

    #[test]
    fn push_pop_is_fifo() {
        let q = queue(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds() {
        let q = queue(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.len(), 2);
        q.pop();
        q.try_push(3).unwrap();
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains() {
        let q = queue(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err((2, PushError::Closed)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let q = queue(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(9).unwrap();
        assert_eq!(q.try_push(10), Err((10, PushError::Full)));
        // Regression: the clamped single slot must be fully usable — pop
        // frees it and a new push is admitted again.
        assert_eq!(q.pop(), Some(9));
        q.try_push(11).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    fn depth_gauge_tracks_backlog() {
        let registry = arp_obs::Registry::new();
        let depth = registry.gauge("d", "", &[]);
        let q = BoundedQueue::new(8, depth.clone());
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(depth.get(), 2);
        q.pop();
        assert_eq!(depth.get(), 1);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(queue(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the consumers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        q.close();
        let mut results: Vec<Option<u32>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort();
        assert_eq!(results, vec![None, None, Some(7)]);
    }
}
