//! Per-technique circuit breakers.
//!
//! A [`CircuitBreaker`] watches the recent outcomes of one technique
//! lane through a sliding window of the last `window` computations and
//! short-circuits the lane when it is evidently broken, so a failing
//! technique stops queueing doomed work while the other three keep
//! serving routes. The state machine is the classic one:
//!
//! ```text
//! Closed ──(error rate ≥ threshold over ≥ min_volume outcomes)──▶ Open
//!   ▲                                                              │
//!   │ probe succeeds                               cooldown elapses│
//!   └───────────── HalfOpen ◀───────────────────────────────────────┘
//!                     │ probe fails
//!                     └──────────▶ Open (cooldown restarts)
//! ```
//!
//! * **Closed** — lanes run normally; every outcome is recorded into the
//!   window. Crossing the error-rate threshold (with at least
//!   `min_volume` outcomes in the window, so a single early failure
//!   cannot trip an idle breaker) opens the circuit.
//! * **Open** — [`CircuitBreaker::try_acquire`] refuses instantly; the
//!   lane is reported `open_circuit` without consuming a worker. After
//!   `cooldown_ms` the next acquire becomes the **single** half-open
//!   probe.
//! * **HalfOpen** — exactly one probe is in flight; concurrent acquires
//!   are refused. The probe's success closes the circuit (window reset);
//!   its failure re-opens it and restarts the cooldown. The breaker
//!   never transitions Open → Closed without a half-open probe
//!   succeeding first (property-tested).
//!
//! Time is an explicit `now_ms` argument (the same convention as the
//! route cache), so tests drive a manual clock and never sleep.

use std::collections::VecDeque;
use std::sync::Mutex;

use arp_obs::{Counter, Gauge};

/// Breaker tunables, shared by every lane of a service.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Sliding window length, in outcomes (at least 1).
    pub window: usize,
    /// Minimum outcomes in the window before the error rate can trip the
    /// breaker.
    pub min_volume: usize,
    /// Error-rate threshold in `[0, 1]`; at or above it the breaker
    /// opens.
    pub error_rate: f64,
    /// How long an open breaker refuses before allowing one half-open
    /// probe, in milliseconds.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 32,
            min_volume: 8,
            error_rate: 0.5,
            cooldown_ms: 5_000,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: lanes run and outcomes are recorded.
    Closed,
    /// Broken: lanes short-circuit without running.
    Open,
    /// Probing: one trial lane is in flight to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable string for responses and health reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric encoding for the `arp_serve_breaker_state` gauge
    /// (0 closed, 1 half-open, 2 open).
    fn gauge_value(&self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Most recent outcomes, `true` = failure; bounded by
    /// `config.window`.
    window: VecDeque<bool>,
    /// Failures currently in the window (kept exact under eviction).
    failures: usize,
    /// When the breaker last opened.
    opened_at_ms: u64,
    /// Whether the half-open probe has been handed out.
    probe_inflight: bool,
}

/// A sliding-window circuit breaker for one technique lane.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    /// `arp_serve_breaker_state{technique}` mirror.
    state_gauge: Gauge,
    /// `arp_serve_breaker_transitions_total` (shared across lanes).
    transitions: Counter,
}

impl CircuitBreaker {
    /// A closed breaker with detached instruments.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker::with_instruments(config, Gauge::default(), Counter::default())
    }

    /// A closed breaker mirroring its state into `state_gauge` and
    /// counting transitions into `transitions`.
    pub fn with_instruments(
        config: BreakerConfig,
        state_gauge: Gauge,
        transitions: Counter,
    ) -> CircuitBreaker {
        let config = BreakerConfig {
            window: config.window.max(1),
            min_volume: config.min_volume.max(1),
            ..config
        };
        state_gauge.set(BreakerState::Closed.gauge_value());
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                window: VecDeque::with_capacity(config.window.max(1)),
                failures: 0,
                opened_at_ms: 0,
                probe_inflight: false,
            }),
            state_gauge,
            transitions,
        }
    }

    fn transition(&self, inner: &mut BreakerInner, to: BreakerState) {
        if inner.state != to {
            inner.state = to;
            self.state_gauge.set(to.gauge_value());
            self.transitions.inc();
        }
    }

    /// Whether a lane may run now. `false` means short-circuit it as
    /// `open_circuit` — the breaker is open (cooldown running) or a
    /// half-open probe is already in flight. When the cooldown has
    /// elapsed, the first acquire becomes the half-open probe and
    /// returns `true`.
    pub fn try_acquire(&self, now_ms: u64) -> bool {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ms >= inner.opened_at_ms.saturating_add(self.config.cooldown_ms) {
                    self.transition(&mut inner, BreakerState::HalfOpen);
                    inner.probe_inflight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_inflight {
                    false
                } else {
                    inner.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// Records a successful lane outcome.
    pub fn record_success(&self, now_ms: u64) {
        let _ = now_ms;
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => Self::push(&self.config, &mut inner, false),
            BreakerState::HalfOpen => {
                // The probe came back healthy: close and start fresh.
                inner.probe_inflight = false;
                inner.window.clear();
                inner.failures = 0;
                self.transition(&mut inner, BreakerState::Closed);
            }
            // A straggler from before the trip; the circuit already
            // decided, so late good news changes nothing.
            BreakerState::Open => {}
        }
    }

    /// Records a failed lane outcome, opening the circuit when the
    /// window's error rate crosses the threshold.
    ///
    /// This is also the correct call when an admitted lane's outcome is
    /// **unknown** — abandoned while queued, or a straggler that outlived
    /// the cancellation grace period. Every `try_acquire` that returned
    /// `true` must eventually be answered by `record_success` or
    /// `record_failure`: in `HalfOpen` that answer is what releases the
    /// single probe, so an unanswered probe would leave the breaker
    /// refusing every future acquire forever. Treating "unknown" as a
    /// failure re-opens the circuit (cooldown restarts) instead of
    /// leaking the probe, and in `Closed` it doubles as a slow-call
    /// signal so a persistently hanging lane still trips its breaker.
    pub fn record_failure(&self, now_ms: u64) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => {
                Self::push(&self.config, &mut inner, true);
                let volume = inner.window.len();
                let rate = inner.failures as f64 / volume as f64;
                if volume >= self.config.min_volume && rate >= self.config.error_rate {
                    inner.opened_at_ms = now_ms;
                    inner.probe_inflight = false;
                    self.transition(&mut inner, BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: back to open, cooldown restarts.
                inner.probe_inflight = false;
                inner.opened_at_ms = now_ms;
                self.transition(&mut inner, BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }

    fn push(config: &BreakerConfig, inner: &mut BreakerInner, failed: bool) {
        if inner.window.len() == config.window && inner.window.pop_front() == Some(true) {
            inner.failures -= 1;
        }
        inner.window.push_back(failed);
        if failed {
            inner.failures += 1;
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker poisoned").state
    }

    /// Failures currently inside the sliding window.
    pub fn window_failures(&self) -> usize {
        self.inner.lock().expect("breaker poisoned").failures
    }

    /// Outcomes currently inside the sliding window.
    pub fn window_volume(&self) -> usize {
        self.inner.lock().expect("breaker poisoned").window.len()
    }

    /// The breaker's configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(min_volume: usize, error_rate: f64, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_volume,
            error_rate,
            cooldown_ms,
        })
    }

    #[test]
    fn stays_closed_below_min_volume() {
        let b = breaker(4, 0.5, 100);
        b.record_failure(0);
        b.record_failure(1);
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Closed, "below min volume");
        b.record_failure(3);
        assert_eq!(b.state(), BreakerState::Open, "volume + rate reached");
    }

    #[test]
    fn open_refuses_until_cooldown_then_probes_once() {
        let b = breaker(2, 0.5, 100);
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(50), "cooldown still running");
        assert!(b.try_acquire(101), "cooldown elapsed: the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.try_acquire(102), "only one probe at a time");
    }

    #[test]
    fn successful_probe_closes_and_resets_the_window() {
        let b = breaker(2, 0.5, 100);
        b.record_failure(0);
        b.record_failure(1);
        assert!(b.try_acquire(150));
        b.record_success(151);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.window_volume(), 0, "window resets on recovery");
        // One fresh failure cannot re-open: the old failures are gone.
        b.record_failure(152);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_the_cooldown() {
        let b = breaker(2, 0.5, 100);
        b.record_failure(0);
        b.record_failure(1);
        assert!(b.try_acquire(150));
        b.record_failure(200);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(250), "cooldown restarted at 200");
        assert!(b.try_acquire(301));
    }

    #[test]
    fn window_eviction_forgets_old_failures() {
        // Window 8, threshold 50%: 4 early failures followed by 8
        // successes must leave a clean window that cannot trip.
        let b = breaker(8, 0.5, 100);
        for i in 0..3 {
            b.record_failure(i);
        }
        for i in 3..11 {
            b.record_success(i);
        }
        assert_eq!(b.window_failures(), 0, "old failures evicted");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn late_success_after_open_is_ignored() {
        let b = breaker(2, 0.5, 100);
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Open);
        b.record_success(2); // straggler lane finishing after the trip
        assert_eq!(b.state(), BreakerState::Open, "no Open→Closed shortcut");
    }

    #[test]
    fn instruments_mirror_state_and_transitions() {
        let registry = arp_obs::Registry::new();
        let gauge = registry.gauge("state", "", &[]);
        let transitions = registry.counter("transitions", "", &[]);
        let b = CircuitBreaker::with_instruments(
            BreakerConfig {
                window: 4,
                min_volume: 2,
                error_rate: 0.5,
                cooldown_ms: 100,
            },
            gauge.clone(),
            transitions.clone(),
        );
        assert_eq!(gauge.get(), 0);
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(gauge.get(), 2, "open encodes as 2");
        assert!(b.try_acquire(200));
        assert_eq!(gauge.get(), 1, "half-open encodes as 1");
        b.record_success(201);
        assert_eq!(gauge.get(), 0);
        assert_eq!(transitions.get(), 3, "closed→open→half_open→closed");
    }
}
