//! The route service: admission → cache probe → parallel fan-out →
//! assembly.
//!
//! [`RouteService`] is generic over a [`RouteBackend`] so the serving
//! machinery stays independent of the demo crate (which depends on this
//! crate, not the other way round). The backend names its *lanes* — one
//! per alternative-route technique — and the service:
//!
//! 1. **admits** the request or sheds it ([`ServeError::Overloaded`]),
//! 2. **probes the cache** per lane, so a repeat query recomputes nothing
//!    and a partially-cached query recomputes only its missing lanes,
//! 3. **fans out** the missing lanes onto the worker pool
//!    ([`crate::scatter`]), bounded by the request deadline,
//! 4. **assembles** the lanes — in lane order, regardless of completion
//!    order — so the response is byte-identical to the serial path.
//!
//! Successful lane results are written back to the cache from the worker
//! thread that computed them; failed lanes are never cached.
//!
//! Deadlines act **cooperatively** on in-flight work: when a request's
//! deadline expires, the service trips a per-request [`CancelToken`] that
//! running lanes observe (through a search budget in the real backend),
//! collects whatever partials they hand back within a bounded grace
//! period, and serves a *truncated* response if at least one lane has
//! something to show — reserving [`ServeError::DeadlineExceeded`] for
//! requests where nothing finished. DESIGN.md §8 documents the full
//! cancellation ladder.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::admission::{Admission, Deadline};
use crate::cache::ShardedCache;
use crate::cancel::CancelToken;
use crate::metrics::ServeMetrics;
use crate::pool::{scatter_cancellable, WorkerPool};
use arp_obs::Registry;

/// How one lane ended under cooperative cancellation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaneOutcome<P> {
    /// The lane ran to completion; the part is cacheable.
    Complete(P),
    /// The lane was interrupted and returns the partial work it had
    /// admitted so far. Never cached — the truncation is an artifact of
    /// this request's deadline, not a property of the query.
    Truncated(P),
}

/// What a backend must provide for the service to run it.
///
/// `Request` is the *normalized* request — for road networks that means
/// coordinates already snapped to nodes, so every request that resolves
/// to the same (city, source node, target node, technique, k) tuple
/// shares cache entries regardless of the raw coordinates sent.
pub trait RouteBackend: Send + Sync + 'static {
    /// A normalized route request.
    type Request: Clone + Send + Sync + 'static;
    /// One lane's (technique's) computed result.
    type Part: Clone + Send + 'static;
    /// The assembled response.
    type Response;

    /// Number of lanes (techniques) per request.
    fn lanes(&self) -> usize;

    /// The cache key for `lane` of `request`. Must encode everything the
    /// lane's result depends on — city, snapped endpoints, technique, k.
    fn lane_key(&self, request: &Self::Request, lane: usize) -> String;

    /// Computes one lane. Runs on a worker thread.
    fn compute(&self, request: &Self::Request, lane: usize) -> Result<Self::Part, String>;

    /// Combines the lanes (given in lane order) into the response.
    fn assemble(&self, request: &Self::Request, parts: Vec<Self::Part>) -> Self::Response;

    /// Computes one lane under a cancel token. Cooperative backends build
    /// their search budget over [`CancelToken::flag`] so a tripped token
    /// stops the search within one budget-check interval and the lane
    /// returns [`LaneOutcome::Truncated`] with its partial work.
    ///
    /// The default ignores the token and delegates to
    /// [`RouteBackend::compute`] — correct, but a deadline then frees the
    /// worker only once the lane finishes on its own.
    fn compute_cancellable(
        &self,
        request: &Self::Request,
        lane: usize,
        token: &CancelToken,
    ) -> Result<LaneOutcome<Self::Part>, String> {
        let _ = token;
        self.compute(request, lane).map(LaneOutcome::Complete)
    }

    /// Assembles a **truncated** response from whatever lanes finished
    /// (`None` = the lane was abandoned, interrupted without a partial,
    /// or failed). Returning `None` declares nothing worth serving, and
    /// the request degrades to [`ServeError::DeadlineExceeded`].
    ///
    /// The default refuses: backends opt in to partial responses.
    fn assemble_partial(
        &self,
        request: &Self::Request,
        parts: Vec<Option<Self::Part>>,
    ) -> Option<Self::Response> {
        let _ = (request, parts);
        None
    }
}

/// Tunables for the serving layer.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads computing technique lanes.
    pub workers: usize,
    /// Bound on queued (not yet running) lane jobs.
    pub queue_capacity: usize,
    /// Bound on concurrently admitted route requests.
    pub max_inflight: usize,
    /// Total route-cache entries; zero disables the cache.
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Cache entry time-to-live; zero means entries never expire.
    pub cache_ttl: Duration,
    /// Per-request deadline; zero disables deadlines (see
    /// [`ServeConfig::request_deadline`]).
    pub deadline: Duration,
    /// How long an expired request waits for its interrupted lanes to
    /// hand back partial results. One search-budget check interval is
    /// enough for a cooperative backend; zero collects nothing.
    pub cancel_grace: Duration,
    /// The `Retry-After` hint handed to shed clients, in seconds.
    pub retry_after_s: u32,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            max_inflight: 32,
            cache_capacity: 4096,
            cache_shards: 8,
            cache_ttl: Duration::from_secs(300),
            deadline: Duration::from_secs(10),
            cancel_grace: Duration::from_millis(100),
            retry_after_s: 1,
        }
    }
}

impl ServeConfig {
    /// The per-request [`Deadline`]. This is the **single** place where a
    /// zero setting is read as "deadlines disabled" and mapped to
    /// [`Deadline::never`]; the `Deadline` type itself treats a zero
    /// timeout literally (already expired).
    pub fn request_deadline(&self) -> Deadline {
        if self.deadline.is_zero() {
            Deadline::never()
        } else {
            Deadline::after(self.deadline)
        }
    }
}

/// Why the service refused or failed a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Shed at admission: too many requests in flight. Answer HTTP 503
    /// with `Retry-After: {retry_after_s}`.
    Overloaded {
        /// Seconds the client should wait before retrying.
        retry_after_s: u32,
    },
    /// The request's deadline expired before every lane finished.
    DeadlineExceeded,
    /// A lane failed; the message is the backend's error.
    Lane(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { retry_after_s } => {
                write!(f, "overloaded; retry after {retry_after_s}s")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Lane(message) => write!(f, "lane failed: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The serving pipeline over one backend. See the module docs for the
/// request lifecycle.
pub struct RouteService<B: RouteBackend> {
    backend: Arc<B>,
    pool: WorkerPool,
    cache: Option<Arc<ShardedCache<String, B::Part>>>,
    admission: Admission,
    config: ServeConfig,
    metrics: ServeMetrics,
    epoch: Instant,
}

impl<B: RouteBackend> RouteService<B> {
    /// Builds the service and registers its instruments in `registry`.
    pub fn new(backend: B, config: ServeConfig, registry: &Registry) -> RouteService<B> {
        let metrics = ServeMetrics::new(registry);
        Self::with_metrics(backend, config, metrics)
    }

    /// Builds the service around pre-resolved (possibly detached) metrics.
    pub fn with_metrics(backend: B, config: ServeConfig, metrics: ServeMetrics) -> RouteService<B> {
        let pool = WorkerPool::new(
            config.workers,
            config.queue_capacity,
            metrics.queue_depth.clone(),
            metrics.jobs_executed.clone(),
        );
        let cache = if config.cache_capacity == 0 {
            None
        } else {
            Some(Arc::new(ShardedCache::new(
                config.cache_capacity,
                config.cache_shards,
                config.cache_ttl.as_millis() as u64,
                metrics.cache.clone(),
            )))
        };
        let admission = Admission::new(config.max_inflight, metrics.inflight.clone());
        RouteService {
            backend: Arc::new(backend),
            pool,
            cache,
            admission,
            config,
            metrics,
            epoch: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Runs one request through the full pipeline.
    pub fn route(&self, request: B::Request) -> Result<B::Response, ServeError> {
        let total_timer = self.metrics.total.start_timer();

        // Stage 1: admission.
        let admit_timer = self.metrics.stage_admit.start_timer();
        let Some(_permit) = self.admission.try_acquire() else {
            admit_timer.discard();
            total_timer.discard();
            self.metrics.shed_admission.inc();
            return Err(ServeError::Overloaded {
                retry_after_s: self.config.retry_after_s,
            });
        };
        admit_timer.stop_ms();
        self.metrics.admitted.inc();
        let deadline = self.config.request_deadline();

        // Stage 2: per-lane cache probe.
        let lanes = self.backend.lanes();
        let cache_timer = self.metrics.stage_cache.start_timer();
        let mut parts: Vec<Option<B::Part>> = vec![None; lanes];
        if let Some(cache) = &self.cache {
            let now_ms = self.now_ms();
            for (lane, slot) in parts.iter_mut().enumerate() {
                let key = self.backend.lane_key(&request, lane);
                *slot = cache.get(&key, now_ms);
            }
        }
        cache_timer.stop_ms();

        // Stage 3: fan out the missing lanes under a per-request cancel
        // token. On deadline expiry the token is tripped; cooperative
        // lanes hand back partials within the grace period.
        let missing: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter_map(|(lane, slot)| slot.is_none().then_some(lane))
            .collect();
        let mut truncated = false;
        if !missing.is_empty() {
            let compute_start = Instant::now();
            let token = CancelToken::new();
            let tasks: Vec<_> = missing
                .iter()
                .map(|&lane| {
                    let backend = Arc::clone(&self.backend);
                    let cache = self.cache.clone();
                    let request = request.clone();
                    let key = self.backend.lane_key(&request, lane);
                    let epoch = self.epoch;
                    let token = token.clone();
                    move || {
                        let result = backend.compute_cancellable(&request, lane, &token);
                        // Only complete lanes are cached: a truncated part
                        // reflects this request's deadline, not the query.
                        if let (Some(cache), Ok(LaneOutcome::Complete(part))) = (&cache, &result) {
                            let now_ms = epoch.elapsed().as_millis() as u64;
                            cache.put(key, part.clone(), now_ms);
                        }
                        result
                    }
                })
                .collect();
            let fanout = scatter_cancellable(
                &self.pool,
                tasks,
                deadline,
                &token,
                self.config.cancel_grace,
                &self.metrics.inline_fallback,
            );
            self.metrics
                .stage_compute
                .observe(compute_start.elapsed().as_secs_f64() * 1_000.0);
            if fanout.deadline_hit {
                self.metrics.cancellations.inc();
                truncated = true;
                for (lane, slot) in missing.into_iter().zip(fanout.slots) {
                    // Lane errors and abandoned lanes degrade to missing
                    // parts under deadline pressure; the assembly below
                    // decides whether what remains is worth serving.
                    if let Some(Ok(LaneOutcome::Complete(part) | LaneOutcome::Truncated(part))) =
                        slot
                    {
                        parts[lane] = Some(part);
                    }
                }
            } else {
                for (lane, slot) in missing.into_iter().zip(fanout.slots) {
                    match slot {
                        Some(Ok(LaneOutcome::Complete(part))) => parts[lane] = Some(part),
                        Some(Ok(LaneOutcome::Truncated(part))) => {
                            // Interrupted without deadline pressure (e.g. a
                            // backend-side expansion cap): still a partial
                            // response, but not a cancellation.
                            truncated = true;
                            parts[lane] = Some(part);
                        }
                        Some(Err(message)) => return Err(ServeError::Lane(message)),
                        None => {
                            return Err(ServeError::Lane("technique lane panicked".to_string()))
                        }
                    }
                }
            }
        }

        // Stage 4: assemble in lane order.
        let assemble_timer = self.metrics.stage_assemble.start_timer();
        let response = if truncated {
            match self.backend.assemble_partial(&request, parts) {
                Some(response) => response,
                None => {
                    // Nothing finished (or the backend refuses partials):
                    // the request degrades to a timeout, never a
                    // full-cost late response.
                    assemble_timer.discard();
                    total_timer.discard();
                    self.metrics.timeouts.inc();
                    return Err(ServeError::DeadlineExceeded);
                }
            }
        } else {
            let parts: Vec<B::Part> = parts
                .into_iter()
                .map(|slot| slot.expect("lane neither cached nor computed"))
                .collect();
            self.backend.assemble(&request, parts)
        };
        assemble_timer.stop_ms();
        total_timer.stop_ms();
        Ok(response)
    }

    /// The backend being served.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The service's metric handles.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The admission gate (for HTTP-layer introspection).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Current worker-queue backlog.
    pub fn queue_len(&self) -> usize {
        self.pool.queue_len()
    }

    /// Graceful shutdown: close the job queue, drain it, join the
    /// workers. (Dropping the service does the same.)
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A backend whose lanes echo the request; used to observe the
    /// service's caching, shedding and deadline behaviour.
    struct EchoBackend {
        lanes: usize,
        delay: Duration,
        fail_lane: Option<usize>,
        computes: AtomicUsize,
    }

    impl EchoBackend {
        fn new(lanes: usize) -> EchoBackend {
            EchoBackend {
                lanes,
                delay: Duration::ZERO,
                fail_lane: None,
                computes: AtomicUsize::new(0),
            }
        }

        fn computes(&self) -> usize {
            self.computes.load(Ordering::SeqCst)
        }
    }

    impl RouteBackend for EchoBackend {
        type Request = (u32, u32);
        type Part = String;
        type Response = String;

        fn lanes(&self) -> usize {
            self.lanes
        }

        fn lane_key(&self, request: &(u32, u32), lane: usize) -> String {
            format!("echo:{}:{}:{lane}", request.0, request.1)
        }

        fn compute(&self, request: &(u32, u32), lane: usize) -> Result<String, String> {
            self.computes.fetch_add(1, Ordering::SeqCst);
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            if self.fail_lane == Some(lane) {
                return Err(format!("lane {lane} refused"));
            }
            Ok(format!("lane{lane}({},{})", request.0, request.1))
        }

        fn assemble(&self, request: &(u32, u32), parts: Vec<String>) -> String {
            format!("{},{} => {}", request.0, request.1, parts.join("|"))
        }
    }

    fn service(backend: EchoBackend, config: ServeConfig) -> RouteService<EchoBackend> {
        RouteService::with_metrics(backend, config, ServeMetrics::default())
    }

    #[test]
    fn lanes_assemble_in_lane_order() {
        let svc = service(EchoBackend::new(4), ServeConfig::default());
        let out = svc.route((3, 9)).unwrap();
        assert_eq!(out, "3,9 => lane0(3,9)|lane1(3,9)|lane2(3,9)|lane3(3,9)");
        assert_eq!(svc.backend().computes(), 4);
    }

    #[test]
    fn repeat_requests_are_served_from_cache() {
        let registry = Registry::new();
        let svc = RouteService::new(EchoBackend::new(4), ServeConfig::default(), &registry);
        let first = svc.route((1, 2)).unwrap();
        let second = svc.route((1, 2)).unwrap();
        assert_eq!(first, second);
        assert_eq!(svc.backend().computes(), 4, "repeat recomputed a lane");
        assert_eq!(svc.metrics().cache.hits.get(), 4);
        assert_eq!(svc.metrics().cache.misses.get(), 4);
    }

    #[test]
    fn disabled_cache_recomputes_every_time() {
        let config = ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let svc = service(EchoBackend::new(3), config);
        svc.route((1, 2)).unwrap();
        svc.route((1, 2)).unwrap();
        assert_eq!(svc.backend().computes(), 6);
    }

    #[test]
    fn admission_full_sheds_with_retry_after() {
        let config = ServeConfig {
            max_inflight: 1,
            retry_after_s: 7,
            ..ServeConfig::default()
        };
        let svc = service(EchoBackend::new(2), config);
        let _occupied = svc.admission().try_acquire().unwrap();
        let err = svc.route((1, 2)).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { retry_after_s: 7 });
    }

    #[test]
    fn deadline_expiry_abandons_the_request() {
        let mut backend = EchoBackend::new(4);
        backend.delay = Duration::from_millis(80);
        let config = ServeConfig {
            workers: 1,
            deadline: Duration::from_millis(30),
            ..ServeConfig::default()
        };
        let registry = Registry::new();
        let svc = RouteService::new(backend, config, &registry);
        let err = svc.route((1, 2)).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert_eq!(svc.metrics().timeouts.get(), 1);
    }

    #[test]
    fn lane_errors_propagate_and_are_not_cached() {
        let mut backend = EchoBackend::new(3);
        backend.fail_lane = Some(1);
        let svc = service(backend, ServeConfig::default());
        let err = svc.route((4, 5)).unwrap_err();
        assert_eq!(err, ServeError::Lane("lane 1 refused".to_string()));
        // The failed lane must recompute on retry (only successes cached).
        let before = svc.backend().computes();
        let _ = svc.route((4, 5));
        assert!(svc.backend().computes() > before);
    }

    /// A cooperative backend: lane 0 answers immediately, other lanes
    /// poll the cancel token every millisecond for `spin` and return
    /// `Truncated` as soon as it trips.
    struct CooperativeBackend {
        lanes: usize,
        spin: Duration,
    }

    impl RouteBackend for CooperativeBackend {
        type Request = (u32, u32);
        type Part = String;
        type Response = (String, bool);

        fn lanes(&self) -> usize {
            self.lanes
        }

        fn lane_key(&self, request: &(u32, u32), lane: usize) -> String {
            format!("coop:{}:{}:{lane}", request.0, request.1)
        }

        fn compute(&self, _request: &(u32, u32), lane: usize) -> Result<String, String> {
            Ok(format!("lane{lane}"))
        }

        fn compute_cancellable(
            &self,
            _request: &(u32, u32),
            lane: usize,
            token: &CancelToken,
        ) -> Result<LaneOutcome<String>, String> {
            if lane == 0 {
                return Ok(LaneOutcome::Complete("lane0".to_string()));
            }
            let start = Instant::now();
            while start.elapsed() < self.spin {
                if token.is_cancelled() {
                    return Ok(LaneOutcome::Truncated(format!("lane{lane}-partial")));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(LaneOutcome::Complete(format!("lane{lane}")))
        }

        fn assemble(&self, _request: &(u32, u32), parts: Vec<String>) -> (String, bool) {
            (parts.join("|"), false)
        }

        fn assemble_partial(
            &self,
            _request: &(u32, u32),
            parts: Vec<Option<String>>,
        ) -> Option<(String, bool)> {
            let present: Vec<String> = parts.into_iter().flatten().collect();
            if present.is_empty() {
                return None;
            }
            Some((present.join("|"), true))
        }
    }

    #[test]
    fn deadline_with_cooperative_backend_serves_truncated_response() {
        let backend = CooperativeBackend {
            lanes: 3,
            spin: Duration::from_secs(5),
        };
        let config = ServeConfig {
            workers: 4,
            cache_capacity: 0,
            deadline: Duration::from_millis(40),
            cancel_grace: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        let registry = Registry::new();
        let svc = RouteService::new(backend, config, &registry);
        let start = Instant::now();
        let (body, truncated) = svc.route((1, 2)).unwrap();
        assert!(truncated, "deadline pressure must mark the response");
        assert!(body.contains("lane0"), "the finished lane is served");
        assert!(body.contains("partial"), "interrupted partials are served");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "cancellation must beat the 5 s spin: {:?}",
            start.elapsed()
        );
        assert_eq!(svc.metrics().cancellations.get(), 1);
        assert_eq!(
            svc.metrics().timeouts.get(),
            0,
            "truncated 200, not a timeout"
        );
    }

    #[test]
    fn tripped_deadline_frees_its_worker_for_other_requests() {
        // One worker, two lanes: lane 0 is instant, lane 1 spins
        // cooperatively for up to 5 s under a 40 ms deadline. Request A's
        // tripped deadline must free the worker; request B right behind
        // it then gets its own lane 0 computed (a truncated Ok). If A's
        // lane were still spinning, B's lanes would never start and B
        // would degrade to DeadlineExceeded.
        let backend = CooperativeBackend {
            lanes: 2,
            spin: Duration::from_secs(5),
        };
        let config = ServeConfig {
            workers: 1,
            cache_capacity: 0,
            deadline: Duration::from_millis(40),
            cancel_grace: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        let registry = Registry::new();
        let svc = RouteService::new(backend, config, &registry);
        let (body_a, truncated_a) = svc.route((9, 9)).unwrap();
        assert!(truncated_a);
        assert!(body_a.contains("lane0"));
        let start = Instant::now();
        let (body_b, _) = svc
            .route((1, 1))
            .expect("worker was not freed by A's cancellation");
        assert!(body_b.contains("lane0"), "B's fast lane must have run");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "worker still busy: {:?}",
            start.elapsed()
        );
        assert_eq!(svc.metrics().cancellations.get(), 2);
    }

    #[test]
    fn expired_entries_force_recomputation() {
        let config = ServeConfig {
            cache_ttl: Duration::from_millis(25),
            ..ServeConfig::default()
        };
        let svc = service(EchoBackend::new(2), config);
        svc.route((1, 2)).unwrap();
        assert_eq!(svc.backend().computes(), 2);
        std::thread::sleep(Duration::from_millis(40));
        svc.route((1, 2)).unwrap();
        assert_eq!(svc.backend().computes(), 4, "expired lanes must recompute");
    }
}
