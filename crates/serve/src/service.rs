//! The route service: admission → cache probe → parallel fan-out →
//! assembly.
//!
//! [`RouteService`] is generic over a [`RouteBackend`] so the serving
//! machinery stays independent of the demo crate (which depends on this
//! crate, not the other way round). The backend names its *lanes* — one
//! per alternative-route technique — and the service:
//!
//! 1. **admits** the request or sheds it ([`ServeError::Overloaded`],
//!    with an adaptive `Retry-After` hint scaled by queue pressure),
//! 2. **probes the cache** per lane, so a repeat query recomputes nothing
//!    and a partially-cached query recomputes only its missing lanes,
//! 3. **prepares** shared per-request artifacts once
//!    ([`RouteBackend::prepare`] — the demo backend builds the search
//!    substrate every technique lane then reads), skipped entirely when
//!    no lane will run,
//! 4. **fans out** the missing lanes onto the worker pool
//!    ([`crate::scatter`]), bounded by the request deadline — but only
//!    lanes whose **circuit breaker** admits them; an open breaker
//!    short-circuits its lane instantly instead of queueing doomed work,
//! 5. **assembles** the lanes — in lane order, regardless of completion
//!    order — so the response is byte-identical to the serial path.
//!
//! Successful lane results are written back to the cache from the worker
//! thread that computed them; failed and truncated lanes are never
//! cached.
//!
//! **Failure isolation.** A lane that errors or panics no longer fails
//! the request: it is retried once (under a per-request retry budget,
//! with decorrelated-jitter backoff, and only when the deadline has
//! headroom for the lane's expected duration — see [`crate::retry`]),
//! and on final failure it is marked [`LaneStatus::Failed`] while the
//! other techniques' routes are still assembled and served as a
//! *degraded* response. Only when **every** lane fails does the request
//! error ([`ServeError::AllLanesFailed`], HTTP 502). DESIGN.md §9
//! documents the full degraded-response ladder.
//!
//! Deadlines act **cooperatively** on in-flight work: when a request's
//! deadline expires, the service trips a per-request [`CancelToken`] that
//! running lanes observe (through a search budget in the real backend),
//! collects whatever partials they hand back within a bounded grace
//! period, and serves a *truncated* response if at least one lane has
//! something to show — reserving [`ServeError::DeadlineExceeded`] for
//! requests where nothing finished. DESIGN.md §8 documents the
//! cancellation ladder.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::admission::{adaptive_retry_after, Admission, Deadline};
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::cache::ShardedCache;
use crate::cancel::CancelToken;
use crate::fault::{sites, FaultPlan};
use crate::metrics::ServeMetrics;
use crate::pool::{scatter_cancellable, Fanout, WorkerPool};
use crate::retry::{LaneLatency, RetryPolicy, RetryState};
use arp_obs::{
    Counter, Registry, SpanCollector, SpanGuard, SpanStatus, TraceConfig, TraceContext,
    TraceReceipt,
};

/// How one lane ended under cooperative cancellation and failure
/// isolation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaneOutcome<P> {
    /// The lane ran to completion; the part is cacheable.
    Complete(P),
    /// The lane was interrupted and returns the partial work it had
    /// admitted so far. Never cached — the truncation is an artifact of
    /// this request's deadline, not a property of the query.
    Truncated(P),
    /// The lane failed outright with no partial to show. Equivalent to
    /// returning a transient [`LaneError`], for backends that prefer to
    /// report failure in-band.
    Failed {
        /// Why the lane failed.
        reason: String,
    },
}

/// A lane failure, carrying whether a retry could plausibly succeed.
///
/// Permanent failures (a malformed query fails identically on every
/// attempt) are never retried; transient ones (an injected fault, a
/// flaky dependency, a panicked worker) get one more chance under the
/// request's retry budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneError {
    /// The backend's error message.
    pub message: String,
    /// Whether retrying might succeed.
    pub transient: bool,
}

impl LaneError {
    /// A failure worth retrying.
    pub fn transient(message: impl Into<String>) -> LaneError {
        LaneError {
            message: message.into(),
            transient: true,
        }
    }

    /// A failure that would repeat identically; never retried.
    pub fn permanent(message: impl Into<String>) -> LaneError {
        LaneError {
            message: message.into(),
            transient: false,
        }
    }
}

impl From<String> for LaneError {
    /// Bare-string errors are treated as transient: one wasted retry is
    /// cheaper than never retrying a recoverable fault.
    fn from(message: String) -> LaneError {
        LaneError::transient(message)
    }
}

impl From<&str> for LaneError {
    fn from(message: &str) -> LaneError {
        LaneError::transient(message)
    }
}

impl std::fmt::Display for LaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-lane verdict carried by a degraded response (the response's
/// `lane_status` map).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneStatus {
    /// The lane completed normally (computed or cached).
    Ok,
    /// The lane was cut short by the deadline; its routes are a prefix.
    Truncated,
    /// The lane failed (error or panic) after exhausting its retry.
    Failed,
    /// The lane's circuit breaker was open; it was never attempted.
    OpenCircuit,
}

impl LaneStatus {
    /// Stable string for response rendering (`ok | truncated | failed |
    /// open_circuit`).
    pub fn as_str(&self) -> &'static str {
        match self {
            LaneStatus::Ok => "ok",
            LaneStatus::Truncated => "truncated",
            LaneStatus::Failed => "failed",
            LaneStatus::OpenCircuit => "open_circuit",
        }
    }

    /// Whether this status degrades the response (a failure, as opposed
    /// to deadline truncation).
    pub fn is_degraded(&self) -> bool {
        matches!(self, LaneStatus::Failed | LaneStatus::OpenCircuit)
    }
}

/// What a backend must provide for the service to run it.
///
/// `Request` is the *normalized* request — for road networks that means
/// coordinates already snapped to nodes, so every request that resolves
/// to the same (city, source node, target node, technique, k) tuple
/// shares cache entries regardless of the raw coordinates sent.
pub trait RouteBackend: Send + Sync + 'static {
    /// A normalized route request.
    type Request: Clone + Send + Sync + 'static;
    /// One lane's (technique's) computed result.
    type Part: Clone + Send + 'static;
    /// The assembled response.
    type Response;

    /// Number of lanes (techniques) per request.
    fn lanes(&self) -> usize;

    /// A stable, human-readable name for `lane` (the technique slug).
    /// Names the lane's circuit breaker, failure metrics and failpoint
    /// site (`lane.<name>`).
    fn lane_name(&self, lane: usize) -> String {
        format!("lane{lane}")
    }

    /// The cache key for `lane` of `request`. Must encode everything the
    /// lane's result depends on — city, snapped endpoints, technique, k.
    /// Must not depend on anything [`RouteBackend::prepare`] adds: the
    /// cache probe runs *before* preparation (a fully-cached request
    /// never prepares anything).
    fn lane_key(&self, request: &Self::Request, lane: usize) -> String;

    /// Prepares shared per-request artifacts **once**, before the lanes
    /// fan out — in the demo backend this builds the
    /// `arp_core::substrate::SearchSubstrate` (forward + backward
    /// shortest-path trees and the base route) that every technique lane
    /// then reads instead of recomputing.
    ///
    /// Called only when at least one lane will actually run: fully
    /// cached requests and requests whose every missing lane is
    /// short-circuited by an open breaker skip preparation entirely.
    /// `token` is the same per-request [`CancelToken`] the lanes
    /// observe, and `deadline` is the request deadline — cooperative
    /// backends bound the preparation by both so an expiring request
    /// aborts its preparation (and falls back to per-lane
    /// self-computation) instead of finishing it pointlessly.
    ///
    /// Returns the request, augmented with whatever was prepared; the
    /// augmented request is what the lanes, retries and assembly see.
    /// The default is the identity — backends opt in.
    fn prepare(
        &self,
        request: Self::Request,
        token: &CancelToken,
        deadline: &Deadline,
    ) -> Self::Request {
        let _ = (token, deadline);
        request
    }

    /// Computes one lane. Runs on a worker thread.
    fn compute(&self, request: &Self::Request, lane: usize) -> Result<Self::Part, String>;

    /// Combines the lanes (given in lane order) into the response.
    fn assemble(&self, request: &Self::Request, parts: Vec<Self::Part>) -> Self::Response;

    /// Computes one lane under a cancel token. Cooperative backends build
    /// their search budget over [`CancelToken::flag`] so a tripped token
    /// stops the search within one budget-check interval and the lane
    /// returns [`LaneOutcome::Truncated`] with its partial work.
    ///
    /// The default ignores the token and delegates to
    /// [`RouteBackend::compute`] — correct, but a deadline then frees the
    /// worker only once the lane finishes on its own.
    fn compute_cancellable(
        &self,
        request: &Self::Request,
        lane: usize,
        token: &CancelToken,
    ) -> Result<LaneOutcome<Self::Part>, LaneError> {
        let _ = token;
        self.compute(request, lane)
            .map(LaneOutcome::Complete)
            .map_err(LaneError::from)
    }

    /// Assembles a **partial** response from whatever lanes finished
    /// (`None` = the lane was abandoned, interrupted without a partial,
    /// or failed). Returning `None` declares nothing worth serving, and
    /// the request degrades to [`ServeError::DeadlineExceeded`] (or
    /// [`ServeError::AllLanesFailed`] when no deadline was involved).
    ///
    /// The default refuses: backends opt in to partial responses.
    fn assemble_partial(
        &self,
        request: &Self::Request,
        parts: Vec<Option<Self::Part>>,
    ) -> Option<Self::Response> {
        let _ = (request, parts);
        None
    }

    /// Assembles a **degraded** response: like
    /// [`RouteBackend::assemble_partial`], but handed the per-lane
    /// [`LaneStatus`] verdicts so the response can carry its
    /// `lane_status` map and `degraded` flag. The default discards the
    /// statuses and delegates to `assemble_partial`.
    fn assemble_degraded(
        &self,
        request: &Self::Request,
        parts: Vec<Option<Self::Part>>,
        statuses: &[LaneStatus],
    ) -> Option<Self::Response> {
        let _ = statuses;
        self.assemble_partial(request, parts)
    }

    /// Attributes stamped on the root span when a trace starts — the
    /// demo backend reports the pinned traffic epoch and the request's
    /// base cache key here. Called only when the trace is recording.
    /// The default stamps nothing.
    fn trace_attrs(&self, request: &Self::Request) -> Vec<(&'static str, String)> {
        let _ = request;
        Vec::new()
    }

    /// Attributes stamped on the `prepare` span after
    /// [`RouteBackend::prepare`] returns — the demo backend reports
    /// whether the shared substrate was built and which builder (CH or
    /// plain Dijkstra) served it. Called only when the trace is
    /// recording. The default stamps nothing.
    fn prepare_attrs(&self, request: &Self::Request) -> Vec<(&'static str, String)> {
        let _ = request;
        Vec::new()
    }
}

/// Tunables for the serving layer.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads computing technique lanes.
    pub workers: usize,
    /// Bound on queued (not yet running) lane jobs.
    pub queue_capacity: usize,
    /// Bound on concurrently admitted route requests.
    pub max_inflight: usize,
    /// Total route-cache entries; zero disables the cache.
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Cache entry time-to-live; zero means entries never expire.
    pub cache_ttl: Duration,
    /// Per-request deadline; zero disables deadlines (see
    /// [`ServeConfig::request_deadline`]).
    pub deadline: Duration,
    /// How long an expired request waits for its interrupted lanes to
    /// hand back partial results. One search-budget check interval is
    /// enough for a cooperative backend; zero collects nothing.
    pub cancel_grace: Duration,
    /// Base `Retry-After` hint for shed clients, in seconds. The hint
    /// actually sent is scaled by queue/in-flight pressure and clamped
    /// to [1, 30] s (see [`adaptive_retry_after`]).
    pub retry_after_s: u32,
    /// The failpoint plan (disabled by default; see [`FaultPlan`]).
    pub faults: FaultPlan,
    /// Per-request lane retry policy.
    pub retry: RetryPolicy,
    /// Per-technique circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Request tracing: head-sampling rate, trace ring capacity and the
    /// slow-request threshold (see [`arp_obs::TraceConfig`]).
    pub trace: TraceConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            max_inflight: 32,
            cache_capacity: 4096,
            cache_shards: 8,
            cache_ttl: Duration::from_secs(300),
            deadline: Duration::from_secs(10),
            cancel_grace: Duration::from_millis(100),
            retry_after_s: 1,
            faults: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            trace: TraceConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The per-request [`Deadline`]. This is the **single** place where a
    /// zero setting is read as "deadlines disabled" and mapped to
    /// [`Deadline::never`]; the `Deadline` type itself treats a zero
    /// timeout literally (already expired).
    pub fn request_deadline(&self) -> Deadline {
        if self.deadline.is_zero() {
            Deadline::never()
        } else {
            Deadline::after(self.deadline)
        }
    }
}

/// Why the service refused or failed a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Shed at admission: too many requests in flight. Answer HTTP 503
    /// with `Retry-After: {retry_after_s}`.
    Overloaded {
        /// Seconds the client should wait before retrying (adaptive,
        /// clamped to [1, 30]).
        retry_after_s: u32,
    },
    /// The request's deadline expired before every lane finished.
    DeadlineExceeded,
    /// Every lane failed (errors, panics or open breakers) — or the
    /// backend refused to assemble what little survived. Answer HTTP
    /// 502: the service is up, its techniques are not.
    AllLanesFailed {
        /// The failed lanes' reasons, joined for the error body.
        reasons: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { retry_after_s } => {
                write!(f, "overloaded; retry after {retry_after_s}s")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::AllLanesFailed { reasons } => {
                write!(f, "all technique lanes failed: {reasons}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Health verdict for load balancers and operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthVerdict {
    /// Fully serving: no breaker open, queue has room.
    Ready,
    /// Serving with reduced capability: some breaker open or the worker
    /// queue is saturated.
    Degraded,
    /// Not usefully serving: every technique's breaker is open.
    Unhealthy,
}

impl HealthVerdict {
    /// Stable string for the health endpoint.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthVerdict::Ready => "ready",
            HealthVerdict::Degraded => "degraded",
            HealthVerdict::Unhealthy => "unhealthy",
        }
    }
}

/// One lane's health entry.
#[derive(Clone, Debug)]
pub struct LaneHealth {
    /// The lane's technique name.
    pub technique: String,
    /// Its breaker state.
    pub breaker: BreakerState,
}

/// A point-in-time health snapshot of the service (the `/api/health`
/// payload).
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Overall verdict.
    pub verdict: HealthVerdict,
    /// Jobs waiting in the worker queue.
    pub queue_depth: usize,
    /// The queue's capacity.
    pub queue_capacity: usize,
    /// Requests currently admitted.
    pub inflight: usize,
    /// The admission bound.
    pub max_inflight: usize,
    /// Per-lane breaker states.
    pub lanes: Vec<LaneHealth>,
    /// Live route-cache entries.
    pub cache_entries: i64,
    /// Route-cache hits so far.
    pub cache_hits: u64,
    /// Route-cache misses so far.
    pub cache_misses: u64,
}

/// Per-lane runtime state: breaker, latency estimate and instruments.
struct LaneRuntime {
    name: String,
    /// Precomputed failpoint site (`lane.<name>`).
    site: String,
    breaker: CircuitBreaker,
    latency: LaneLatency,
    /// `arp_serve_lane_failures_total{technique,reason}`.
    fail_error: Counter,
    fail_panic: Counter,
    fail_abandoned: Counter,
    fail_open_circuit: Counter,
    /// `arp_serve_retries_total{technique,outcome}`.
    retry_success: Counter,
    retry_failure: Counter,
}

impl LaneRuntime {
    fn new(name: String, config: &BreakerConfig, registry: Option<&Registry>) -> LaneRuntime {
        let site = sites::lane(&name);
        let (breaker, fail, retry) = match registry {
            Some(registry) => {
                let failures = |reason: &str| {
                    registry.counter(
                        "arp_serve_lane_failures_total",
                        "Technique lanes that failed, by technique and reason.",
                        &[("technique", name.as_str()), ("reason", reason)],
                    )
                };
                let retries = |outcome: &str| {
                    registry.counter(
                        "arp_serve_retries_total",
                        "Lane retries attempted, by technique and outcome.",
                        &[("technique", name.as_str()), ("outcome", outcome)],
                    )
                };
                let breaker = CircuitBreaker::with_instruments(
                    *config,
                    registry.gauge(
                        "arp_serve_breaker_state",
                        "Circuit-breaker state per technique (0 closed, 1 half-open, 2 open).",
                        &[("technique", name.as_str())],
                    ),
                    registry.counter(
                        "arp_serve_breaker_transitions_total",
                        "Circuit-breaker state transitions across all techniques.",
                        &[],
                    ),
                );
                (
                    breaker,
                    [
                        failures("error"),
                        failures("panic"),
                        failures("abandoned"),
                        failures("open_circuit"),
                    ],
                    [retries("success"), retries("failure")],
                )
            }
            None => (
                CircuitBreaker::new(*config),
                std::array::from_fn(|_| Counter::default()),
                std::array::from_fn(|_| Counter::default()),
            ),
        };
        let [fail_error, fail_panic, fail_abandoned, fail_open_circuit] = fail;
        let [retry_success, retry_failure] = retry;
        LaneRuntime {
            name,
            site,
            breaker,
            latency: LaneLatency::new(),
            fail_error,
            fail_panic,
            fail_abandoned,
            fail_open_circuit,
            retry_success,
            retry_failure,
        }
    }
}

/// How one fan-out attempt of a lane ended (the fan-out's slot type).
enum LaneReply<P> {
    /// The backend returned an outcome; the `u64` is the attempt's
    /// wall-clock duration in milliseconds (feeds the lane's latency
    /// estimate).
    Outcome(LaneOutcome<P>, u64),
    /// The backend returned an error.
    Errored(LaneError),
    /// The attempt panicked (contained by the attempt's catch_unwind).
    Panicked(String),
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "lane panicked".to_string()
    }
}

/// Everything one lane attempt needs, owned so it can run on a worker
/// thread or inline on the requester (for retries).
struct LaneAttempt<B: RouteBackend> {
    backend: Arc<B>,
    cache: Option<Arc<ShardedCache<String, B::Part>>>,
    faults: FaultPlan,
    site: String,
    key: String,
    epoch: Instant,
    lane: usize,
    token: CancelToken,
    request: B::Request,
    /// The attempt's trace span, opened at submission time; travels
    /// with the attempt to whichever thread runs it and records on
    /// drop at the end of [`LaneAttempt::run`].
    span: SpanGuard,
}

impl<B: RouteBackend> LaneAttempt<B> {
    /// Runs the attempt: fire the lane's failpoint, compute, cache a
    /// complete result. Panics (real or injected) are contained here so
    /// a panicking technique is indistinguishable from an erroring one
    /// at the fan-out layer.
    fn run(mut self) -> LaneReply<B::Part> {
        let start = Instant::now();
        if self.span.is_recording() {
            // The span opened when the lane was submitted; everything
            // up to here was time spent waiting in the worker queue.
            let picked_up_us = self.span.start_us() + self.span.elapsed_us();
            self.span.record_child(
                "queue",
                self.span.start_us(),
                picked_up_us,
                SpanStatus::Ok,
                Vec::new(),
            );
            self.span
                .attr_u64("queue_wait_us", picked_up_us - self.span.start_us());
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Injected faults and backend errors surface identically to
            // the fan-out layer but are told apart on the span.
            if let Err(message) = self.faults.fire(&self.site) {
                return Err((true, LaneError::transient(message)));
            }
            self.backend
                .compute_cancellable(&self.request, self.lane, &self.token)
                .map_err(|error| (false, error))
        }));
        if self.token.is_cancelled() {
            self.span.attr("cancelled", "true");
        }
        match result {
            Ok(Ok(outcome)) => {
                // Only complete lanes are cached: a truncated part
                // reflects this request's deadline, a failure is not a
                // result at all.
                if let (Some(cache), LaneOutcome::Complete(part)) = (&self.cache, &outcome) {
                    let now_ms = self.epoch.elapsed().as_millis() as u64;
                    cache.put(self.key.clone(), part.clone(), now_ms);
                }
                match &outcome {
                    LaneOutcome::Complete(_) => self.span.attr("outcome", "complete"),
                    LaneOutcome::Truncated(_) => {
                        self.span.set_status(SpanStatus::Truncated);
                        self.span.attr("outcome", "truncated");
                    }
                    LaneOutcome::Failed { reason } => {
                        self.span.set_status(SpanStatus::Failed);
                        self.span.attr("outcome", "failed");
                        if self.span.is_recording() {
                            self.span.attr("error", reason.clone());
                        }
                    }
                }
                LaneReply::Outcome(outcome, start.elapsed().as_millis() as u64)
            }
            Ok(Err((injected, error))) => {
                self.span.set_status(SpanStatus::Failed);
                self.span.attr("outcome", "failed");
                if self.span.is_recording() {
                    let key = if injected { "fault_injected" } else { "error" };
                    self.span.attr(key, error.message.clone());
                }
                LaneReply::Errored(error)
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                self.span.set_status(SpanStatus::Failed);
                self.span.attr("outcome", "failed");
                if self.span.is_recording() {
                    self.span.attr("panic", message.clone());
                }
                LaneReply::Panicked(message)
            }
        }
    }
}

/// The serving pipeline over one backend. See the module docs for the
/// request lifecycle.
pub struct RouteService<B: RouteBackend> {
    backend: Arc<B>,
    pool: WorkerPool,
    cache: Option<Arc<ShardedCache<String, B::Part>>>,
    admission: Admission,
    config: ServeConfig,
    metrics: ServeMetrics,
    lanes: Vec<LaneRuntime>,
    /// Monotonic request sequence; decorrelates retry jitter streams.
    seq: AtomicU64,
    epoch: Instant,
    /// Per-request trace collector (ring buffer + sampling verdicts).
    tracer: SpanCollector,
}

impl<B: RouteBackend> RouteService<B> {
    /// Builds the service and registers its instruments in `registry`.
    pub fn new(backend: B, config: ServeConfig, registry: &Registry) -> RouteService<B> {
        let metrics = ServeMetrics::new(registry);
        Self::build(backend, config, metrics, Some(registry))
    }

    /// Builds the service around pre-resolved (possibly detached) metrics.
    pub fn with_metrics(backend: B, config: ServeConfig, metrics: ServeMetrics) -> RouteService<B> {
        Self::build(backend, config, metrics, None)
    }

    fn build(
        backend: B,
        mut config: ServeConfig,
        metrics: ServeMetrics,
        registry: Option<&Registry>,
    ) -> RouteService<B> {
        if let Some(registry) = registry {
            config.faults = config.faults.clone().attach_metrics(registry);
        }
        let pool = WorkerPool::new(
            config.workers,
            config.queue_capacity,
            metrics.queue_depth.clone(),
            metrics.jobs_executed.clone(),
        );
        let cache = if config.cache_capacity == 0 {
            None
        } else {
            Some(Arc::new(ShardedCache::new(
                config.cache_capacity,
                config.cache_shards,
                config.cache_ttl.as_millis() as u64,
                metrics.cache.clone(),
            )))
        };
        let admission = Admission::new(config.max_inflight, metrics.inflight.clone());
        let lanes = (0..backend.lanes())
            .map(|lane| LaneRuntime::new(backend.lane_name(lane), &config.breaker, registry))
            .collect();
        let tracer = match registry {
            Some(registry) => SpanCollector::new(&config.trace, registry),
            // Metrics-only construction still records traces (the ring
            // is inspectable); only the counters are detached.
            None => SpanCollector::new(&config.trace, &Registry::disabled()),
        };
        RouteService {
            backend: Arc::new(backend),
            pool,
            cache,
            admission,
            config,
            metrics,
            lanes,
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            tracer,
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn attempt(
        &self,
        lane: usize,
        request: &B::Request,
        token: &CancelToken,
        span: SpanGuard,
    ) -> LaneAttempt<B> {
        LaneAttempt {
            backend: Arc::clone(&self.backend),
            cache: self.cache.clone(),
            faults: self.config.faults.clone(),
            site: self.lanes[lane].site.clone(),
            key: self.backend.lane_key(request, lane),
            epoch: self.epoch,
            lane,
            token: token.clone(),
            request: request.clone(),
            span,
        }
    }

    /// Runs one request through the full pipeline.
    pub fn route(&self, request: B::Request) -> Result<B::Response, ServeError> {
        self.route_traced(request).1
    }

    /// Runs one request through the full pipeline under a trace: every
    /// stage — admission, cache probe, prepare, each lane attempt
    /// (including retries and breaker short-circuits) and assembly —
    /// records a span, and the returned [`TraceReceipt`] carries the
    /// trace id the HTTP layer echoes back plus the slow/kept verdicts
    /// for the slow-request log.
    pub fn route_traced(
        &self,
        request: B::Request,
    ) -> (TraceReceipt, Result<B::Response, ServeError>) {
        let ctx = self.tracer.start_trace();
        let mut root = ctx.span("request");
        if root.is_recording() {
            for (key, value) in self.backend.trace_attrs(&request) {
                root.attr(key, value);
            }
        }
        let (status, result) = self.route_stages(request, &ctx, &mut root);
        root.set_status(status);
        drop(root);
        (ctx.finish(status), result)
    }

    /// The pipeline body: returns the request's final [`SpanStatus`]
    /// (what the trace is filed under) alongside the response.
    fn route_stages(
        &self,
        mut request: B::Request,
        ctx: &TraceContext,
        root: &mut SpanGuard,
    ) -> (SpanStatus, Result<B::Response, ServeError>) {
        let root_id = root.id();
        let total_timer = self.metrics.total.start_timer();

        // Stage 1: admission.
        let admit_timer = self.metrics.stage_admit.start_timer();
        let mut admit_span = ctx.child_span("admission", root_id);
        let Some(_permit) = self.admission.try_acquire() else {
            admit_timer.discard();
            total_timer.discard();
            self.metrics.shed_admission.inc();
            let retry_after_s = adaptive_retry_after(
                self.config.retry_after_s,
                self.admission.inflight(),
                self.admission.max_inflight(),
                self.pool.queue_len(),
                self.pool.queue_capacity(),
            );
            admit_span.set_status(SpanStatus::Failed);
            admit_span.attr("outcome", "shed");
            admit_span.attr_u64("retry_after_s", u64::from(retry_after_s));
            drop(admit_span);
            return (
                SpanStatus::Failed,
                Err(ServeError::Overloaded { retry_after_s }),
            );
        };
        if admit_span.is_recording() {
            admit_span.attr_u64("inflight", self.admission.inflight() as u64);
        }
        drop(admit_span);
        admit_timer.stop_ms();
        self.metrics.admitted.inc();
        let deadline = self.config.request_deadline();

        // Stage 2: per-lane cache probe. An injected `cache.get` error
        // degrades the probe to a full miss — the cache is an
        // optimization, never a dependency.
        let lanes = self.backend.lanes();
        let cache_timer = self.metrics.stage_cache.start_timer();
        let mut probe_span = ctx.child_span("cache_probe", root_id);
        let mut parts: Vec<Option<B::Part>> = vec![None; lanes];
        if let Some(cache) = &self.cache {
            match self.config.faults.fire(sites::CACHE_GET) {
                Ok(()) => {
                    let now_ms = self.now_ms();
                    for (lane, slot) in parts.iter_mut().enumerate() {
                        let key = self.backend.lane_key(&request, lane);
                        *slot = cache.get(&key, now_ms);
                    }
                }
                Err(message) => {
                    if probe_span.is_recording() {
                        probe_span.attr("fault_injected", message);
                    }
                }
            }
        }
        if probe_span.is_recording() {
            let hits = parts.iter().filter(|slot| slot.is_some()).count();
            probe_span.attr_u64("hits", hits as u64);
            probe_span.attr_u64("lanes", lanes as u64);
        }
        drop(probe_span);
        cache_timer.stop_ms();

        // Stage 3: fan out the missing lanes — gated per lane by its
        // circuit breaker — under a per-request cancel token. On deadline
        // expiry the token is tripped; cooperative lanes hand back
        // partials within the grace period.
        let missing: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter_map(|(lane, slot)| slot.is_none().then_some(lane))
            .collect();
        let mut statuses: Vec<LaneStatus> = vec![LaneStatus::Ok; lanes];
        let mut failures: Vec<(usize, String)> = Vec::new();
        let mut truncated = false;
        let mut deadline_hit = false;
        if !missing.is_empty() {
            let now = self.now_ms();
            let mut runnable: Vec<usize> = Vec::with_capacity(missing.len());
            for &lane in &missing {
                if self.lanes[lane].breaker.try_acquire(now) {
                    runnable.push(lane);
                } else {
                    // Open breaker: short-circuit without consuming a
                    // worker or a queue slot.
                    statuses[lane] = LaneStatus::OpenCircuit;
                    self.lanes[lane].fail_open_circuit.inc();
                    failures.push((lane, format!("{}: circuit open", self.lanes[lane].name)));
                    if ctx.is_recording() {
                        let tick = ctx.tick_us();
                        ctx.record_span(
                            "lane",
                            Some(root_id),
                            tick,
                            tick,
                            SpanStatus::Failed,
                            vec![
                                ("technique", self.lanes[lane].name.clone()),
                                ("breaker", "open".to_string()),
                                ("outcome", "open_circuit".to_string()),
                            ],
                        );
                    }
                }
            }

            // Stage 3a: shared preparation, once per request — but only
            // when something will actually run. The backend sees the
            // same cancel token the lanes observe, so a deadline that
            // expires mid-preparation aborts it cooperatively.
            let token = CancelToken::new();
            if !runnable.is_empty() {
                let prepare_timer = self.metrics.stage_prepare.start_timer();
                let mut prepare_span = ctx.child_span("prepare", root_id);
                request = self.backend.prepare(request, &token, &deadline);
                if prepare_span.is_recording() {
                    for (key, value) in self.backend.prepare_attrs(&request) {
                        prepare_span.attr(key, value);
                    }
                }
                drop(prepare_span);
                prepare_timer.stop_ms();
            }

            let compute_start = Instant::now();
            let attempts: Vec<LaneAttempt<B>> = runnable
                .iter()
                .map(|&lane| {
                    let mut span = ctx.child_span("lane", root_id);
                    if span.is_recording() {
                        span.attr("technique", self.lanes[lane].name.clone());
                        span.attr_u64("attempt", 1);
                        span.attr("breaker", self.lanes[lane].breaker.state().as_str());
                    }
                    self.attempt(lane, &request, &token, span)
                })
                .collect();
            // An injected `queue.push` error simulates a refused queue:
            // every lane degrades to inline execution, exactly like the
            // real queue-full fallback.
            let fanout: Fanout<LaneReply<B::Part>> =
                if self.config.faults.fire(sites::QUEUE_PUSH).is_err() {
                    let slots = attempts
                        .into_iter()
                        .map(|attempt| {
                            self.metrics.inline_fallback.inc();
                            Some(attempt.run())
                        })
                        .collect();
                    Fanout {
                        slots,
                        deadline_hit: false,
                    }
                } else {
                    let tasks: Vec<_> = attempts
                        .into_iter()
                        .map(|attempt| move || attempt.run())
                        .collect();
                    scatter_cancellable(
                        &self.pool,
                        tasks,
                        deadline,
                        &token,
                        self.config.cancel_grace,
                        &self.metrics.inline_fallback,
                    )
                };
            self.metrics
                .stage_compute
                .observe(compute_start.elapsed().as_secs_f64() * 1_000.0);

            deadline_hit = fanout.deadline_hit;
            if deadline_hit {
                self.metrics.cancellations.inc();
                truncated = true;
                root.attr("cancelled", "true");
            }
            let mut retry_state: Option<RetryState> = None;
            for (lane, slot) in runnable.into_iter().zip(fanout.slots) {
                let runtime = &self.lanes[lane];
                match slot {
                    Some(LaneReply::Outcome(LaneOutcome::Complete(part), ms)) => {
                        runtime.latency.observe_ms(ms);
                        runtime.breaker.record_success(self.now_ms());
                        parts[lane] = Some(part);
                    }
                    Some(LaneReply::Outcome(LaneOutcome::Truncated(part), _)) => {
                        // Interrupted — under deadline pressure, or by a
                        // backend-side expansion cap. Either way a
                        // partial response, not a lane failure.
                        truncated = true;
                        statuses[lane] = LaneStatus::Truncated;
                        runtime.breaker.record_success(self.now_ms());
                        parts[lane] = Some(part);
                    }
                    Some(LaneReply::Outcome(LaneOutcome::Failed { reason }, _)) => {
                        self.lane_failed(
                            lane,
                            LaneError::transient(reason),
                            &runtime.fail_error,
                            deadline_hit,
                            &deadline,
                            &request,
                            ctx,
                            root_id,
                            &mut retry_state,
                            &mut parts,
                            &mut statuses,
                            &mut truncated,
                            &mut failures,
                        );
                    }
                    Some(LaneReply::Errored(error)) => {
                        self.lane_failed(
                            lane,
                            error,
                            &runtime.fail_error,
                            deadline_hit,
                            &deadline,
                            &request,
                            ctx,
                            root_id,
                            &mut retry_state,
                            &mut parts,
                            &mut statuses,
                            &mut truncated,
                            &mut failures,
                        );
                    }
                    Some(LaneReply::Panicked(message)) => {
                        self.lane_failed(
                            lane,
                            LaneError::transient(format!("lane panicked: {message}")),
                            &runtime.fail_panic,
                            deadline_hit,
                            &deadline,
                            &request,
                            ctx,
                            root_id,
                            &mut retry_state,
                            &mut parts,
                            &mut statuses,
                            &mut truncated,
                            &mut failures,
                        );
                    }
                    None => {
                        // The lane's outcome is unknown: it acquired its
                        // breaker (possibly as the half-open probe) but
                        // never reported back. The breaker must still get
                        // an answer — otherwise a half-open probe leaks
                        // and the lane stays open_circuit forever — and
                        // "unknown" conservatively counts as a failure,
                        // which also lets a persistently hanging lane
                        // trip its circuit instead of eating the full
                        // deadline on every request.
                        runtime.breaker.record_failure(self.now_ms());
                        if deadline_hit {
                            // Abandoned while queued, or a straggler that
                            // outlived the grace period: a deadline
                            // artifact, part of the truncation.
                            statuses[lane] = LaneStatus::Truncated;
                        } else {
                            statuses[lane] = LaneStatus::Failed;
                            runtime.fail_abandoned.inc();
                            failures.push((lane, format!("{}: lane abandoned", runtime.name)));
                        }
                    }
                }
            }
        }

        // Stage 4: assemble in lane order. The fully-healthy path calls
        // the plain `assemble` so its response stays byte-identical to
        // the serial reference; anything else goes through the degraded
        // ladder.
        let degraded = statuses.iter().any(LaneStatus::is_degraded);
        let assemble_timer = self.metrics.stage_assemble.start_timer();
        let mut assemble_span = ctx.child_span("assemble", root_id);
        let response = if !truncated && !degraded {
            let parts: Vec<B::Part> = parts
                .into_iter()
                .map(|slot| slot.expect("lane neither cached nor computed"))
                .collect();
            self.backend.assemble(&request, parts)
        } else {
            match self.backend.assemble_degraded(&request, parts, &statuses) {
                Some(response) => {
                    if degraded {
                        self.metrics.degraded.inc();
                    }
                    response
                }
                None => {
                    // Nothing worth serving (or the backend refuses
                    // partials). A tripped deadline degrades to a
                    // timeout; pure lane failure is a bad gateway.
                    assemble_timer.discard();
                    total_timer.discard();
                    assemble_span.set_status(SpanStatus::Failed);
                    if deadline_hit || (truncated && !degraded) {
                        self.metrics.timeouts.inc();
                        assemble_span.attr("outcome", "deadline_exceeded");
                        drop(assemble_span);
                        return (SpanStatus::Failed, Err(ServeError::DeadlineExceeded));
                    }
                    let reasons = if failures.is_empty() {
                        "no lane produced a result".to_string()
                    } else {
                        failures
                            .iter()
                            .map(|(_, reason)| reason.as_str())
                            .collect::<Vec<_>>()
                            .join("; ")
                    };
                    assemble_span.attr("outcome", "all_lanes_failed");
                    drop(assemble_span);
                    return (
                        SpanStatus::Failed,
                        Err(ServeError::AllLanesFailed { reasons }),
                    );
                }
            }
        };
        if assemble_span.is_recording() {
            if degraded {
                assemble_span.attr("outcome", "degraded");
            } else if truncated {
                assemble_span.attr("outcome", "truncated");
            }
        }
        drop(assemble_span);
        assemble_timer.stop_ms();
        total_timer.stop_ms();
        let status = if degraded {
            SpanStatus::Degraded
        } else if truncated {
            SpanStatus::Truncated
        } else {
            SpanStatus::Ok
        };
        (status, Ok(response))
    }

    /// Handles one lane's final-attempt failure: record it, then retry
    /// once if the failure is transient, the request still has retry
    /// budget, the breaker admits the attempt, and the deadline has
    /// headroom for the lane's expected duration.
    #[allow(clippy::too_many_arguments)]
    fn lane_failed(
        &self,
        lane: usize,
        error: LaneError,
        failure_counter: &Counter,
        deadline_hit: bool,
        deadline: &Deadline,
        request: &B::Request,
        ctx: &TraceContext,
        root_id: u32,
        retry_state: &mut Option<RetryState>,
        parts: &mut [Option<B::Part>],
        statuses: &mut [LaneStatus],
        truncated: &mut bool,
        failures: &mut Vec<(usize, String)>,
    ) {
        let runtime = &self.lanes[lane];
        runtime.breaker.record_failure(self.now_ms());
        failure_counter.inc();

        if error.transient && !deadline_hit {
            let state = retry_state.get_or_insert_with(|| {
                RetryState::new(self.config.retry, self.seq.fetch_add(1, Ordering::Relaxed))
            });
            if let Some(backoff) = state.next_attempt(deadline, runtime.latency.estimate_ms()) {
                if runtime.breaker.try_acquire(self.now_ms()) {
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    // The retry runs under the *residual* request deadline,
                    // through the same cancellable fan-out as a first
                    // attempt: if the headroom estimate was wrong (the
                    // latency EWMA starts at zero), the deadline trips the
                    // retry's token and truncates it like any other lane
                    // instead of blocking the requester indefinitely.
                    let token = CancelToken::new();
                    let mut span = ctx.child_span("lane", root_id);
                    if span.is_recording() {
                        span.attr("technique", runtime.name.clone());
                        span.attr_u64("attempt", 2);
                        span.attr("retry", "true");
                        span.attr_u64("backoff_ms", backoff.as_millis() as u64);
                    }
                    let attempt = self.attempt(lane, request, &token, span);
                    let fanout: Fanout<LaneReply<B::Part>> = scatter_cancellable(
                        &self.pool,
                        vec![move || attempt.run()],
                        *deadline,
                        &token,
                        self.config.cancel_grace,
                        &self.metrics.inline_fallback,
                    );
                    match fanout.slots.into_iter().next().flatten() {
                        Some(LaneReply::Outcome(LaneOutcome::Complete(part), ms)) => {
                            runtime.latency.observe_ms(ms);
                            runtime.retry_success.inc();
                            runtime.breaker.record_success(self.now_ms());
                            parts[lane] = Some(part);
                            statuses[lane] = LaneStatus::Ok;
                        }
                        Some(LaneReply::Outcome(LaneOutcome::Truncated(part), _)) => {
                            runtime.retry_success.inc();
                            runtime.breaker.record_success(self.now_ms());
                            parts[lane] = Some(part);
                            statuses[lane] = LaneStatus::Truncated;
                            *truncated = true;
                        }
                        Some(LaneReply::Outcome(LaneOutcome::Failed { reason }, _))
                        | Some(LaneReply::Errored(LaneError {
                            message: reason, ..
                        }))
                        | Some(LaneReply::Panicked(reason)) => {
                            runtime.retry_failure.inc();
                            runtime.breaker.record_failure(self.now_ms());
                            statuses[lane] = LaneStatus::Failed;
                            failures.push((lane, format!("{}: {reason}", runtime.name)));
                        }
                        None => {
                            // The retry ran out of deadline with nothing
                            // to show (or was abandoned). Outcome unknown:
                            // record a breaker failure, which releases any
                            // half-open probe the retry may hold.
                            runtime.retry_failure.inc();
                            runtime.breaker.record_failure(self.now_ms());
                            statuses[lane] = LaneStatus::Failed;
                            failures.push((
                                lane,
                                format!(
                                    "{}: {} (retry exceeded the deadline)",
                                    runtime.name, error.message
                                ),
                            ));
                        }
                    }
                    return;
                }
                // The breaker refused the retry before anything ran: no
                // retry cost was incurred, so the budget unit goes back
                // for the request's other lanes.
                state.refund();
                if ctx.is_recording() {
                    let tick = ctx.tick_us();
                    ctx.record_span(
                        "lane",
                        Some(root_id),
                        tick,
                        tick,
                        SpanStatus::Failed,
                        vec![
                            ("technique", runtime.name.clone()),
                            ("retry_refused", "breaker".to_string()),
                        ],
                    );
                }
            }
        }
        statuses[lane] = LaneStatus::Failed;
        failures.push((lane, format!("{}: {}", runtime.name, error.message)));
    }

    /// A point-in-time health snapshot: queue depth, in-flight count,
    /// per-technique breaker states and cache statistics, with an
    /// overall verdict (every breaker open → unhealthy; any breaker open
    /// or the queue saturated → degraded; otherwise ready).
    pub fn health(&self) -> HealthReport {
        let lanes: Vec<LaneHealth> = self
            .lanes
            .iter()
            .map(|runtime| LaneHealth {
                technique: runtime.name.clone(),
                breaker: runtime.breaker.state(),
            })
            .collect();
        let open = lanes
            .iter()
            .filter(|l| l.breaker == BreakerState::Open)
            .count();
        let queue_depth = self.pool.queue_len();
        let queue_capacity = self.pool.queue_capacity();
        let verdict = if !lanes.is_empty() && open == lanes.len() {
            HealthVerdict::Unhealthy
        } else if open > 0 || queue_depth >= queue_capacity {
            HealthVerdict::Degraded
        } else {
            HealthVerdict::Ready
        };
        HealthReport {
            verdict,
            queue_depth,
            queue_capacity,
            inflight: self.admission.inflight(),
            max_inflight: self.admission.max_inflight(),
            lanes,
            cache_entries: self.metrics.cache.entries.get(),
            cache_hits: self.metrics.cache.hits.get(),
            cache_misses: self.metrics.cache.misses.get(),
        }
    }

    /// Records a traffic-epoch bump against the route cache: every entry
    /// currently held was keyed under an older epoch (the backend folds
    /// the epoch into the lane key), so all of them just became logically
    /// unreachable. The entries themselves age out of their shards via
    /// the ordinary LRU/TTL machinery — this only advances
    /// `arp_serve_cache_epoch_invalidations_total` by the live entry
    /// count, keeping the tick O(1) instead of a full-cache sweep.
    pub fn note_epoch_invalidations(&self) {
        let live = self.metrics.cache.entries.get();
        if live > 0 {
            self.metrics.cache.epoch_invalidations.add(live as u64);
        }
    }

    /// The breaker state of one lane (for tests and introspection).
    pub fn breaker_state(&self, lane: usize) -> BreakerState {
        self.lanes[lane].breaker.state()
    }

    /// The backend being served.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The service's metric handles.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The trace collector: the ring buffer of kept traces and the
    /// sampling verdicts behind the `/api/debug/traces` and
    /// `/api/trace/<id>` endpoints.
    pub fn tracer(&self) -> &SpanCollector {
        &self.tracer
    }

    /// The admission gate (for HTTP-layer introspection).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Current worker-queue backlog.
    pub fn queue_len(&self) -> usize {
        self.pool.queue_len()
    }

    /// Graceful shutdown: close the job queue, drain it, join the
    /// workers. (Dropping the service does the same.)
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A backend whose lanes echo the request; used to observe the
    /// service's caching, shedding, deadline and failure behaviour.
    struct EchoBackend {
        lanes: usize,
        delay: Duration,
        /// Fails on every attempt.
        fail_lane: Option<usize>,
        /// Panics on every attempt.
        panic_lane: Option<usize>,
        /// Fails while `flaky_failures` is positive (each failed attempt
        /// decrements it), then succeeds — a recoverable fault.
        flaky_lane: Option<usize>,
        flaky_failures: AtomicUsize,
        computes: AtomicUsize,
    }

    impl EchoBackend {
        fn new(lanes: usize) -> EchoBackend {
            EchoBackend {
                lanes,
                delay: Duration::ZERO,
                fail_lane: None,
                panic_lane: None,
                flaky_lane: None,
                flaky_failures: AtomicUsize::new(0),
                computes: AtomicUsize::new(0),
            }
        }

        fn computes(&self) -> usize {
            self.computes.load(Ordering::SeqCst)
        }
    }

    impl RouteBackend for EchoBackend {
        type Request = (u32, u32);
        type Part = String;
        type Response = String;

        fn lanes(&self) -> usize {
            self.lanes
        }

        fn lane_key(&self, request: &(u32, u32), lane: usize) -> String {
            format!("echo:{}:{}:{lane}", request.0, request.1)
        }

        fn compute(&self, request: &(u32, u32), lane: usize) -> Result<String, String> {
            self.computes.fetch_add(1, Ordering::SeqCst);
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            if self.fail_lane == Some(lane) {
                return Err(format!("lane {lane} refused"));
            }
            if self.panic_lane == Some(lane) {
                panic!("lane {lane} exploded");
            }
            if self.flaky_lane == Some(lane)
                && self
                    .flaky_failures
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
            {
                return Err(format!("lane {lane} flaked"));
            }
            Ok(format!("lane{lane}({},{})", request.0, request.1))
        }

        fn assemble(&self, request: &(u32, u32), parts: Vec<String>) -> String {
            format!("{},{} => {}", request.0, request.1, parts.join("|"))
        }

        fn assemble_degraded(
            &self,
            request: &(u32, u32),
            parts: Vec<Option<String>>,
            statuses: &[LaneStatus],
        ) -> Option<String> {
            let present: Vec<String> = parts.into_iter().flatten().collect();
            if present.is_empty() {
                return None;
            }
            let status: Vec<&str> = statuses.iter().map(LaneStatus::as_str).collect();
            Some(format!(
                "{},{} => {} [{}]",
                request.0,
                request.1,
                present.join("|"),
                status.join(",")
            ))
        }
    }

    fn service(backend: EchoBackend, config: ServeConfig) -> RouteService<EchoBackend> {
        RouteService::with_metrics(backend, config, ServeMetrics::default())
    }

    /// A retry policy that never retries — for tests counting attempts.
    fn no_retries() -> RetryPolicy {
        RetryPolicy {
            budget: 0,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn lanes_assemble_in_lane_order() {
        let svc = service(EchoBackend::new(4), ServeConfig::default());
        let out = svc.route((3, 9)).unwrap();
        assert_eq!(out, "3,9 => lane0(3,9)|lane1(3,9)|lane2(3,9)|lane3(3,9)");
        assert_eq!(svc.backend().computes(), 4);
    }

    #[test]
    fn repeat_requests_are_served_from_cache() {
        let registry = Registry::new();
        let svc = RouteService::new(EchoBackend::new(4), ServeConfig::default(), &registry);
        let first = svc.route((1, 2)).unwrap();
        let second = svc.route((1, 2)).unwrap();
        assert_eq!(first, second);
        assert_eq!(svc.backend().computes(), 4, "repeat recomputed a lane");
        assert_eq!(svc.metrics().cache.hits.get(), 4);
        assert_eq!(svc.metrics().cache.misses.get(), 4);
    }

    #[test]
    fn disabled_cache_recomputes_every_time() {
        let config = ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let svc = service(EchoBackend::new(3), config);
        svc.route((1, 2)).unwrap();
        svc.route((1, 2)).unwrap();
        assert_eq!(svc.backend().computes(), 6);
    }

    #[test]
    fn admission_full_sheds_with_adaptive_retry_after() {
        let config = ServeConfig {
            max_inflight: 1,
            retry_after_s: 7,
            ..ServeConfig::default()
        };
        let svc = service(EchoBackend::new(2), config);
        let _occupied = svc.admission().try_acquire().unwrap();
        let err = svc.route((1, 2)).unwrap_err();
        // Admission saturated (1/1), queue empty: pressure 0.5 → 3× base.
        assert_eq!(err, ServeError::Overloaded { retry_after_s: 21 });
    }

    #[test]
    fn deadline_expiry_abandons_the_request() {
        let mut backend = EchoBackend::new(4);
        backend.delay = Duration::from_millis(80);
        // Zero grace: the non-cooperative 80 ms lanes cannot land a
        // partial after the 30 ms deadline, so there is nothing to serve.
        let config = ServeConfig {
            workers: 1,
            deadline: Duration::from_millis(30),
            cancel_grace: Duration::ZERO,
            ..ServeConfig::default()
        };
        let registry = Registry::new();
        let svc = RouteService::new(backend, config, &registry);
        let err = svc.route((1, 2)).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert_eq!(svc.metrics().timeouts.get(), 1);
    }

    #[test]
    fn failed_lane_degrades_the_response_instead_of_failing_it() {
        let mut backend = EchoBackend::new(3);
        backend.fail_lane = Some(1);
        let registry = Registry::new();
        let svc = RouteService::new(backend, ServeConfig::default(), &registry);
        let out = svc.route((4, 5)).unwrap();
        assert_eq!(
            out, "4,5 => lane0(4,5)|lane2(4,5) [ok,failed,ok]",
            "the healthy lanes are served, the failed one is marked"
        );
        assert_eq!(svc.metrics().degraded.get(), 1);
        assert_eq!(
            registry.counter_value(
                "arp_serve_lane_failures_total",
                &[("technique", "lane1"), ("reason", "error")]
            ),
            1
        );
        assert_eq!(
            registry.counter_value(
                "arp_serve_retries_total",
                &[("technique", "lane1"), ("outcome", "failure")]
            ),
            1,
            "the transient failure earned exactly one (failed) retry"
        );
        // 3 lanes + 1 retry of the failing lane.
        assert_eq!(svc.backend().computes(), 4);
        // The failed lane was never cached: a repeat recomputes it (and
        // retries it once more) while the healthy lanes come from cache.
        svc.route((4, 5)).unwrap();
        assert_eq!(svc.backend().computes(), 6);
    }

    /// Regression: a panicking technique used to fail the whole request
    /// (`ServeError::Lane`). It must degrade instead — HTTP 200 with the
    /// other techniques' routes.
    #[test]
    fn panicking_lane_still_serves_the_other_techniques() {
        let mut backend = EchoBackend::new(4);
        backend.panic_lane = Some(2);
        let registry = Registry::new();
        let config = ServeConfig {
            retry: no_retries(),
            ..ServeConfig::default()
        };
        let svc = RouteService::new(backend, config, &registry);
        let out = svc.route((7, 8)).unwrap();
        assert_eq!(
            out,
            "7,8 => lane0(7,8)|lane1(7,8)|lane3(7,8) [ok,ok,failed,ok]"
        );
        assert_eq!(
            registry.counter_value(
                "arp_serve_lane_failures_total",
                &[("technique", "lane2"), ("reason", "panic")]
            ),
            1
        );
        // The pool survives: an untouched request still serves cleanly.
        let clean = svc.route((1, 1)).unwrap();
        assert!(clean.contains("lane0(1,1)"));
    }

    #[test]
    fn retry_recovers_a_transient_failure_and_stays_healthy() {
        let mut backend = EchoBackend::new(3);
        backend.flaky_lane = Some(1);
        backend.flaky_failures = AtomicUsize::new(1);
        let registry = Registry::new();
        let svc = RouteService::new(backend, ServeConfig::default(), &registry);
        let out = svc.route((2, 6)).unwrap();
        assert_eq!(
            out, "2,6 => lane0(2,6)|lane1(2,6)|lane2(2,6)",
            "a recovered retry must yield the healthy, non-degraded response"
        );
        assert_eq!(svc.metrics().degraded.get(), 0);
        assert_eq!(
            registry.counter_value(
                "arp_serve_retries_total",
                &[("technique", "lane1"), ("outcome", "success")]
            ),
            1
        );
        assert_eq!(svc.backend().computes(), 4, "3 lanes + 1 retry");
    }

    #[test]
    fn all_lanes_failing_is_a_bad_gateway() {
        let mut backend = EchoBackend::new(1);
        backend.fail_lane = Some(0);
        let svc = service(backend, ServeConfig::default());
        let err = svc.route((1, 2)).unwrap_err();
        match err {
            ServeError::AllLanesFailed { reasons } => {
                assert!(reasons.contains("refused"), "{reasons}");
            }
            other => panic!("expected AllLanesFailed, got {other:?}"),
        }
    }

    #[test]
    fn breaker_opens_and_short_circuits_the_broken_lane() {
        let mut backend = EchoBackend::new(2);
        backend.fail_lane = Some(0);
        let registry = Registry::new();
        let config = ServeConfig {
            cache_capacity: 0,
            retry: no_retries(),
            breaker: BreakerConfig {
                window: 8,
                min_volume: 3,
                error_rate: 0.5,
                cooldown_ms: 60_000,
            },
            ..ServeConfig::default()
        };
        let svc = RouteService::new(backend, config, &registry);
        for i in 0..3 {
            let out = svc.route((i, i)).unwrap();
            assert!(out.contains("[failed,ok]"), "{out}");
        }
        assert_eq!(svc.breaker_state(0), BreakerState::Open);
        let before = svc.backend().computes();
        let out = svc.route((9, 9)).unwrap();
        assert!(
            out.contains("[open_circuit,ok]"),
            "short-circuited lane must be reported as open_circuit: {out}"
        );
        assert_eq!(
            svc.backend().computes(),
            before + 1,
            "the open lane must not consume worker time"
        );
        assert_eq!(
            registry.counter_value(
                "arp_serve_lane_failures_total",
                &[("technique", "lane0"), ("reason", "open_circuit")]
            ),
            1
        );
        assert!(registry.counter_value("arp_serve_breaker_transitions_total", &[]) >= 1);
        let health = svc.health();
        assert_eq!(health.verdict, HealthVerdict::Degraded);
        assert_eq!(health.lanes[0].breaker, BreakerState::Open);
        assert_eq!(health.lanes[1].breaker, BreakerState::Closed);
    }

    #[test]
    fn health_reports_unhealthy_when_every_breaker_is_open() {
        let mut backend = EchoBackend::new(1);
        backend.fail_lane = Some(0);
        let config = ServeConfig {
            cache_capacity: 0,
            retry: no_retries(),
            breaker: BreakerConfig {
                window: 4,
                min_volume: 1,
                error_rate: 0.1,
                cooldown_ms: 60_000,
            },
            ..ServeConfig::default()
        };
        let svc = service(backend, config);
        assert_eq!(svc.health().verdict, HealthVerdict::Ready);
        let _ = svc.route((1, 2));
        assert_eq!(svc.health().verdict, HealthVerdict::Unhealthy);
        // With its only breaker open the request cannot be served at all.
        let err = svc.route((3, 4)).unwrap_err();
        match err {
            ServeError::AllLanesFailed { reasons } => {
                assert!(reasons.contains("circuit open"), "{reasons}");
            }
            other => panic!("expected AllLanesFailed, got {other:?}"),
        }
    }

    /// Lane 0 misbehaves according to `mode` — 0 = fail fast, 1 = hang
    /// non-cooperatively (longer than deadline + grace, so its fan-out
    /// slot comes back `None`), 2 = succeed. Lane 1 always succeeds
    /// instantly.
    struct MoodyBackend {
        mode: AtomicUsize,
    }

    impl RouteBackend for MoodyBackend {
        type Request = (u32, u32);
        type Part = String;
        type Response = String;

        fn lanes(&self) -> usize {
            2
        }

        fn lane_key(&self, request: &(u32, u32), lane: usize) -> String {
            format!("moody:{}:{}:{lane}", request.0, request.1)
        }

        fn compute(&self, _request: &(u32, u32), lane: usize) -> Result<String, String> {
            if lane == 0 {
                match self.mode.load(Ordering::SeqCst) {
                    0 => return Err("lane 0 refused".to_string()),
                    1 => std::thread::sleep(Duration::from_millis(300)),
                    _ => {}
                }
            }
            Ok(format!("lane{lane}"))
        }

        fn assemble(&self, _request: &(u32, u32), parts: Vec<String>) -> String {
            parts.join("|")
        }

        fn assemble_degraded(
            &self,
            _request: &(u32, u32),
            parts: Vec<Option<String>>,
            statuses: &[LaneStatus],
        ) -> Option<String> {
            let present: Vec<String> = parts.into_iter().flatten().collect();
            if present.is_empty() {
                return None;
            }
            let status: Vec<&str> = statuses.iter().map(LaneStatus::as_str).collect();
            Some(format!("{} [{}]", present.join("|"), status.join(",")))
        }
    }

    /// Regression: a half-open probe whose lane came back `None`
    /// (abandoned or straggling past the grace period) used to leave
    /// `probe_inflight` set forever, wedging the lane as `open_circuit`
    /// until restart. The unknown outcome must re-open the breaker —
    /// releasing the probe — so the lane can recover.
    #[test]
    fn abandoned_half_open_probe_reopens_the_breaker_instead_of_leaking() {
        let backend = MoodyBackend {
            mode: AtomicUsize::new(0),
        };
        let config = ServeConfig {
            workers: 4,
            cache_capacity: 0,
            deadline: Duration::from_millis(40),
            cancel_grace: Duration::from_millis(10),
            retry: no_retries(),
            breaker: BreakerConfig {
                window: 4,
                min_volume: 1,
                error_rate: 0.1,
                cooldown_ms: 1,
            },
            ..ServeConfig::default()
        };
        let svc = RouteService::with_metrics(backend, config, ServeMetrics::default());

        // A fast failure opens the breaker (min volume 1).
        let out = svc.route((1, 1)).unwrap();
        assert!(out.contains("[failed,ok]"), "{out}");
        assert_eq!(svc.breaker_state(0), BreakerState::Open);

        // After the cooldown the next request holds the half-open probe —
        // and hangs past deadline + grace, so the probe's outcome is
        // unknown (`None` slot). The breaker must re-open, not stay
        // half-open with the probe leaked.
        svc.backend().mode.store(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(5));
        let out = svc.route((2, 2)).unwrap();
        assert!(out.contains("[truncated,ok]"), "{out}");
        assert_eq!(
            svc.breaker_state(0),
            BreakerState::Open,
            "an unknown probe outcome must re-open the breaker"
        );

        // The lane recovers: after another cooldown the probe runs, comes
        // back healthy, and closes the circuit. With a leaked probe this
        // request would short-circuit as open_circuit forever.
        svc.backend().mode.store(2, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(5));
        let out = svc.route((3, 3)).unwrap();
        assert!(out.contains("lane0"), "the probe lane must run: {out}");
        assert_eq!(svc.breaker_state(0), BreakerState::Closed);
    }

    /// A lane that never answers within deadline + grace must still feed
    /// its breaker: hangs are failures too, or a persistently hanging
    /// technique would consume a worker plus the full deadline on every
    /// request without ever tripping its circuit.
    #[test]
    fn hanging_lane_eventually_trips_its_breaker() {
        let backend = MoodyBackend {
            mode: AtomicUsize::new(1),
        };
        let config = ServeConfig {
            workers: 6,
            cache_capacity: 0,
            deadline: Duration::from_millis(30),
            cancel_grace: Duration::ZERO,
            retry: no_retries(),
            breaker: BreakerConfig {
                window: 4,
                min_volume: 2,
                error_rate: 0.5,
                cooldown_ms: 60_000,
            },
            ..ServeConfig::default()
        };
        let svc = RouteService::with_metrics(backend, config, ServeMetrics::default());
        for i in 0..2 {
            let out = svc.route((i, i)).unwrap();
            assert!(out.contains("[truncated,ok]"), "{out}");
        }
        assert_eq!(
            svc.breaker_state(0),
            BreakerState::Open,
            "hanging outcomes must count as breaker failures"
        );
        let out = svc.route((9, 9)).unwrap();
        assert!(out.contains("[open_circuit,ok]"), "{out}");
    }

    /// Lane 1's first attempt fails fast (transiently); its retry spins
    /// cooperatively — polling the cancel token — for up to 5 s. Lane 0
    /// answers instantly.
    struct RetryCoopBackend {
        attempts: AtomicUsize,
    }

    impl RouteBackend for RetryCoopBackend {
        type Request = (u32, u32);
        type Part = String;
        type Response = (String, bool);

        fn lanes(&self) -> usize {
            2
        }

        fn lane_key(&self, request: &(u32, u32), lane: usize) -> String {
            format!("retrycoop:{}:{}:{lane}", request.0, request.1)
        }

        fn compute(&self, _request: &(u32, u32), lane: usize) -> Result<String, String> {
            Ok(format!("lane{lane}"))
        }

        fn compute_cancellable(
            &self,
            _request: &(u32, u32),
            lane: usize,
            token: &CancelToken,
        ) -> Result<LaneOutcome<String>, LaneError> {
            if lane == 0 {
                return Ok(LaneOutcome::Complete("lane0".to_string()));
            }
            if self.attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                return Err(LaneError::transient("first attempt flaked"));
            }
            let start = Instant::now();
            while start.elapsed() < Duration::from_secs(5) {
                if token.is_cancelled() {
                    return Ok(LaneOutcome::Truncated("lane1-partial".to_string()));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(LaneOutcome::Complete("lane1-late".to_string()))
        }

        fn assemble(&self, _request: &(u32, u32), parts: Vec<String>) -> (String, bool) {
            (parts.join("|"), false)
        }

        fn assemble_partial(
            &self,
            _request: &(u32, u32),
            parts: Vec<Option<String>>,
        ) -> Option<(String, bool)> {
            let present: Vec<String> = parts.into_iter().flatten().collect();
            if present.is_empty() {
                return None;
            }
            Some((present.join("|"), true))
        }
    }

    /// Regression: the retry used to run inline with a fresh cancel token
    /// that nothing ever tripped, so a slow retry could block the request
    /// arbitrarily past its deadline. It must be truncated by the residual
    /// deadline like a first attempt.
    #[test]
    fn retry_is_bounded_by_the_request_deadline() {
        let backend = RetryCoopBackend {
            attempts: AtomicUsize::new(0),
        };
        let registry = Registry::new();
        let config = ServeConfig {
            workers: 4,
            cache_capacity: 0,
            deadline: Duration::from_millis(60),
            cancel_grace: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        let svc = RouteService::new(backend, config, &registry);
        let start = Instant::now();
        let (body, truncated) = svc.route((1, 2)).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "the deadline must truncate the retry, not wait out its 5 s spin: {:?}",
            start.elapsed()
        );
        assert!(truncated, "a deadline-truncated retry marks the response");
        assert!(body.contains("lane0"), "{body}");
        assert!(
            body.contains("lane1-partial"),
            "the retry's cooperative partial is served: {body}"
        );
        assert_eq!(
            registry.counter_value(
                "arp_serve_retries_total",
                &[("technique", "lane1"), ("outcome", "success")]
            ),
            1,
            "a truncated retry that produced a partial counts as a success"
        );
    }

    #[test]
    fn injected_lane_fault_degrades_and_counts() {
        let registry = Registry::new();
        let config = ServeConfig {
            faults: FaultPlan::parse("lane.lane0=error:chaos").unwrap(),
            retry: no_retries(),
            ..ServeConfig::default()
        };
        let svc = RouteService::new(EchoBackend::new(2), config, &registry);
        let out = svc.route((5, 5)).unwrap();
        assert!(out.contains("[failed,ok]"), "{out}");
        assert_eq!(
            registry.counter_value(
                "arp_serve_faults_injected_total",
                &[("site", "lane.lane0"), ("kind", "error")]
            ),
            1
        );
    }

    #[test]
    fn injected_cache_outage_degrades_to_a_full_miss() {
        let config = ServeConfig {
            faults: FaultPlan::parse("cache.get=error").unwrap(),
            ..ServeConfig::default()
        };
        let svc = service(EchoBackend::new(2), config);
        let a = svc.route((1, 2)).unwrap();
        let b = svc.route((1, 2)).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            svc.backend().computes(),
            4,
            "a failed cache probe must recompute, not fail the request"
        );
    }

    #[test]
    fn injected_queue_outage_runs_lanes_inline() {
        let registry = Registry::new();
        let config = ServeConfig {
            faults: FaultPlan::parse("queue.push=error").unwrap(),
            cache_capacity: 0,
            ..ServeConfig::default()
        };
        let svc = RouteService::new(EchoBackend::new(3), config, &registry);
        let out = svc.route((3, 3)).unwrap();
        assert_eq!(out, "3,3 => lane0(3,3)|lane1(3,3)|lane2(3,3)");
        assert_eq!(
            svc.metrics().inline_fallback.get(),
            3,
            "every lane must degrade to inline execution"
        );
    }

    /// A cooperative backend: lane 0 answers immediately, other lanes
    /// poll the cancel token every millisecond for `spin` and return
    /// `Truncated` as soon as it trips.
    struct CooperativeBackend {
        lanes: usize,
        spin: Duration,
    }

    impl RouteBackend for CooperativeBackend {
        type Request = (u32, u32);
        type Part = String;
        type Response = (String, bool);

        fn lanes(&self) -> usize {
            self.lanes
        }

        fn lane_key(&self, request: &(u32, u32), lane: usize) -> String {
            format!("coop:{}:{}:{lane}", request.0, request.1)
        }

        fn compute(&self, _request: &(u32, u32), lane: usize) -> Result<String, String> {
            Ok(format!("lane{lane}"))
        }

        fn compute_cancellable(
            &self,
            _request: &(u32, u32),
            lane: usize,
            token: &CancelToken,
        ) -> Result<LaneOutcome<String>, LaneError> {
            if lane == 0 {
                return Ok(LaneOutcome::Complete("lane0".to_string()));
            }
            let start = Instant::now();
            while start.elapsed() < self.spin {
                if token.is_cancelled() {
                    return Ok(LaneOutcome::Truncated(format!("lane{lane}-partial")));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(LaneOutcome::Complete(format!("lane{lane}")))
        }

        fn assemble(&self, _request: &(u32, u32), parts: Vec<String>) -> (String, bool) {
            (parts.join("|"), false)
        }

        fn assemble_partial(
            &self,
            _request: &(u32, u32),
            parts: Vec<Option<String>>,
        ) -> Option<(String, bool)> {
            let present: Vec<String> = parts.into_iter().flatten().collect();
            if present.is_empty() {
                return None;
            }
            Some((present.join("|"), true))
        }
    }

    #[test]
    fn deadline_with_cooperative_backend_serves_truncated_response() {
        let backend = CooperativeBackend {
            lanes: 3,
            spin: Duration::from_secs(5),
        };
        let config = ServeConfig {
            workers: 4,
            cache_capacity: 0,
            deadline: Duration::from_millis(40),
            cancel_grace: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        let registry = Registry::new();
        let svc = RouteService::new(backend, config, &registry);
        let start = Instant::now();
        let (body, truncated) = svc.route((1, 2)).unwrap();
        assert!(truncated, "deadline pressure must mark the response");
        assert!(body.contains("lane0"), "the finished lane is served");
        assert!(body.contains("partial"), "interrupted partials are served");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "cancellation must beat the 5 s spin: {:?}",
            start.elapsed()
        );
        assert_eq!(svc.metrics().cancellations.get(), 1);
        assert_eq!(
            svc.metrics().timeouts.get(),
            0,
            "truncated 200, not a timeout"
        );
        assert_eq!(
            svc.metrics().degraded.get(),
            0,
            "truncation is not degradation: no lane failed"
        );
    }

    #[test]
    fn tripped_deadline_frees_its_worker_for_other_requests() {
        // One worker, two lanes: lane 0 is instant, lane 1 spins
        // cooperatively for up to 5 s under a 40 ms deadline. Request A's
        // tripped deadline must free the worker; request B right behind
        // it then gets its own lane 0 computed (a truncated Ok). If A's
        // lane were still spinning, B's lanes would never start and B
        // would degrade to DeadlineExceeded.
        let backend = CooperativeBackend {
            lanes: 2,
            spin: Duration::from_secs(5),
        };
        let config = ServeConfig {
            workers: 1,
            cache_capacity: 0,
            deadline: Duration::from_millis(40),
            cancel_grace: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        let registry = Registry::new();
        let svc = RouteService::new(backend, config, &registry);
        let (body_a, truncated_a) = svc.route((9, 9)).unwrap();
        assert!(truncated_a);
        assert!(body_a.contains("lane0"));
        let start = Instant::now();
        let (body_b, _) = svc
            .route((1, 1))
            .expect("worker was not freed by A's cancellation");
        assert!(body_b.contains("lane0"), "B's fast lane must have run");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "worker still busy: {:?}",
            start.elapsed()
        );
        assert_eq!(svc.metrics().cancellations.get(), 2);
    }

    /// The tentpole invariant at the serve layer: a degraded request's
    /// trace holds a well-nested tree with spans for every stage —
    /// admission, cache probe, prepare, each lane attempt (the failed
    /// lane twice, with retry attributes), queue waits, assembly — and
    /// the tail rule keeps it even though head sampling is off.
    #[test]
    fn degraded_request_trace_covers_every_stage() {
        let mut backend = EchoBackend::new(2);
        backend.fail_lane = Some(1);
        let registry = Registry::new();
        let config = ServeConfig {
            trace: arp_obs::TraceConfig {
                sample: 0.0,
                ..arp_obs::TraceConfig::default()
            },
            ..ServeConfig::default()
        };
        let svc = RouteService::new(backend, config, &registry);
        let (receipt, result) = svc.route_traced((3, 4));
        let out = result.unwrap();
        assert!(out.contains("[ok,failed]"), "{out}");
        assert_eq!(receipt.status, SpanStatus::Degraded);
        assert!(receipt.kept, "tail rule must keep a degraded trace");

        let trace = svc.tracer().trace(receipt.id).expect("trace in ring");
        assert!(trace.well_nested(), "{:?}", trace.spans);
        assert_eq!(trace.root().unwrap().name, "request");
        assert_eq!(trace.root().unwrap().status, SpanStatus::Degraded);
        for stage in ["admission", "cache_probe", "prepare", "assemble"] {
            assert!(trace.span(stage).is_some(), "missing {stage} span");
        }
        assert_eq!(
            trace.span("assemble").unwrap().attr("outcome"),
            Some("degraded")
        );
        // Two first attempts plus one retry of the failing lane, each
        // with its retroactive queue-wait child.
        let lane_spans: Vec<_> = trace.spans_named("lane").collect();
        assert_eq!(lane_spans.len(), 3, "{lane_spans:?}");
        assert_eq!(trace.spans_named("queue").count(), 3);
        let retry = lane_spans
            .iter()
            .find(|s| s.attr("retry") == Some("true"))
            .expect("retry attempt span");
        assert_eq!(retry.attr("technique"), Some("lane1"));
        assert_eq!(retry.attr("attempt"), Some("2"));
        assert_eq!(retry.status, SpanStatus::Failed);
        assert!(retry.attr("error").is_some(), "{retry:?}");
        assert!(
            lane_spans
                .iter()
                .all(|s| s.parent == Some(trace.root().unwrap().id)),
            "lane spans hang off the root"
        );
        assert!(registry.counter_value("arp_trace_spans_total", &[]) >= 9);
        assert_eq!(registry.counter_value("arp_trace_sampled_total", &[]), 1);
    }

    /// An open breaker's short-circuited lane still shows up in the
    /// trace — as an instant span marked `open_circuit` — and a cached
    /// repeat's trace records the probe hits without lane spans.
    #[test]
    fn short_circuits_and_cache_hits_are_traced() {
        let mut backend = EchoBackend::new(2);
        backend.fail_lane = Some(0);
        let config = ServeConfig {
            retry: no_retries(),
            breaker: BreakerConfig {
                window: 8,
                min_volume: 1,
                error_rate: 0.1,
                cooldown_ms: 60_000,
            },
            ..ServeConfig::default()
        };
        let svc = service(backend, config);
        let _ = svc.route((1, 2)).unwrap(); // opens lane0's breaker
        assert_eq!(svc.breaker_state(0), BreakerState::Open);

        let (receipt, result) = svc.route_traced((5, 6));
        result.unwrap();
        let trace = svc.tracer().trace(receipt.id).expect("degraded trace kept");
        assert!(trace.well_nested(), "{:?}", trace.spans);
        let short = trace
            .spans_named("lane")
            .find(|s| s.attr("outcome") == Some("open_circuit"))
            .expect("short-circuit span");
        assert_eq!(short.attr("breaker"), Some("open"));
        assert_eq!(short.duration_us(), 0, "an instant span");

        // Repeat: lane1 is cached; lane0 still short-circuits, so the
        // trace is kept (degraded) and the probe recorded its hit.
        let (receipt, result) = svc.route_traced((5, 6));
        result.unwrap();
        let trace = svc.tracer().trace(receipt.id).expect("repeat trace kept");
        assert_eq!(trace.span("cache_probe").unwrap().attr("hits"), Some("1"));
        assert_eq!(
            trace
                .spans_named("lane")
                .filter(|s| s.attr("outcome") != Some("open_circuit"))
                .count(),
            0,
            "cached lanes must not fan out"
        );
    }

    #[test]
    fn expired_entries_force_recomputation() {
        let config = ServeConfig {
            cache_ttl: Duration::from_millis(25),
            ..ServeConfig::default()
        };
        let svc = service(EchoBackend::new(2), config);
        svc.route((1, 2)).unwrap();
        assert_eq!(svc.backend().computes(), 2);
        std::thread::sleep(Duration::from_millis(40));
        svc.route((1, 2)).unwrap();
        assert_eq!(svc.backend().computes(), 4, "expired lanes must recompute");
    }
}
