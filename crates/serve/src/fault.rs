//! Failpoint injection: deterministic, zero-overhead-when-disabled
//! fault sites for exercising the serving layer's failure handling.
//!
//! A [`FaultPlan`] maps *named sites* in the request path to a
//! [`FaultKind`]. The serving layer consults the plan at four sites —
//! `lane.<technique>` (per-technique compute), `backend.snap` (request
//! normalization in the demo), `cache.get` (route-cache probe) and
//! `queue.push` (fan-out submission) — so every failure-handling
//! behaviour (retries, circuit breakers, the degraded-response ladder)
//! is testable without real hardware faults.
//!
//! Design constraints, in order:
//!
//! * **Zero overhead when disabled.** A disabled plan is a `None`
//!   inside; [`FaultPlan::fire`] is a single branch and returns without
//!   ever hashing a site name. Production services run with
//!   `FaultPlan::default()` and pay one predictable branch per site.
//! * **Deterministic.** `Flaky { p, seed }` draws from a seeded
//!   splitmix64 stream keyed by the per-site hit counter — no `rand`,
//!   no wall clock — so a chaos run with a fixed seed injects the exact
//!   same fault sequence every time (`repro_chaos` depends on this).
//! * **Configurable from the command line.** `arp serve --faults
//!   "lane.penalty=flaky:0.25:42,cache.get=delay:5"` parses into a plan
//!   via [`FaultPlan::parse`]; the grammar is documented there.
//!
//! Every *fired* fault increments
//! `arp_serve_faults_injected_total{site,kind}` (resolved lazily, only
//! on the already-slow injected path).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use arp_obs::{Counter, Registry};

/// Well-known failpoint site names used by the serving pipeline.
pub mod sites {
    /// The route-cache probe (an injected error degrades to a full miss).
    pub const CACHE_GET: &str = "cache.get";
    /// Fan-out submission to the worker queue (an injected error forces
    /// every lane inline, as if the queue refused the jobs).
    pub const QUEUE_PUSH: &str = "queue.push";
    /// Request normalization in the HTTP layer (the demo's geo snap).
    pub const BACKEND_SNAP: &str = "backend.snap";
    /// The traffic write-ahead journal append (an injected error models
    /// disk-full/EIO: the delta is rejected with 503 and the epoch never
    /// moves).
    pub const JOURNAL_APPEND: &str = "journal.append";

    /// The compute site for one technique lane: `lane.<technique>`.
    pub fn lane(technique: &str) -> String {
        format!("lane.{technique}")
    }
}

/// What an armed failpoint does when it fires.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
    /// Fail with the given error message.
    Error(String),
    /// Panic (the fan-out's panic containment must absorb it).
    Panic,
    /// Fail with probability `p` per hit, deterministically: the n-th hit
    /// of the site draws from a splitmix64 stream seeded with `seed`, so
    /// the same plan injects the same fault sequence on every run.
    Flaky {
        /// Per-hit failure probability in `[0, 1]`.
        p: f64,
        /// Stream seed; same seed, same coin flips.
        seed: u64,
    },
}

impl FaultKind {
    /// The bounded-cardinality `kind` metric label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Delay(_) => "delay",
            FaultKind::Error(_) => "error",
            FaultKind::Panic => "panic",
            FaultKind::Flaky { .. } => "flaky",
        }
    }
}

/// One armed site in a plan.
#[derive(Debug)]
struct Failpoint {
    site: String,
    kind: FaultKind,
    /// Hits so far (drives the deterministic flaky stream).
    hits: AtomicU64,
    /// Faults actually fired (a flaky site that passes does not count).
    /// Kept locally so [`FaultPlan::injected_at`] works on unattached
    /// plans, whose `injected` counter is a detached no-op.
    fired: AtomicU64,
    /// `arp_serve_faults_injected_total{site,kind}` — counts *fired*
    /// faults, not hits.
    injected: Counter,
}

impl Failpoint {
    fn fired(&self) {
        self.fired.fetch_add(1, Ordering::Relaxed);
        self.injected.inc();
    }
}

/// sebastiano vigna's splitmix64: one 64-bit mix, good enough to turn
/// `(seed, hit-index)` into an independent uniform draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A registry of armed failpoints. Cloning shares the plan (and its hit
/// counters). The default plan is disabled and costs one branch per
/// site check.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Vec<Failpoint>>>,
}

impl FaultPlan {
    /// The disabled plan: never injects, never allocates.
    pub fn disabled() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether any site is armed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Arms `site` with `kind` (replacing any previous arming of the
    /// same site). Programmatic equivalent of one `site=spec` entry.
    pub fn with(self, site: impl Into<String>, kind: FaultKind) -> FaultPlan {
        let site = site.into();
        let mut points: Vec<Failpoint> = match self.inner {
            Some(arc) => arc
                .iter()
                .filter(|f| f.site != site)
                .map(|f| Failpoint {
                    site: f.site.clone(),
                    kind: f.kind.clone(),
                    // Carry the untouched sites' progress over (as
                    // `attach_metrics` does): re-arming one site must not
                    // reset the deterministic flaky streams or fired
                    // counts of the others.
                    hits: AtomicU64::new(f.hits.load(Ordering::Relaxed)),
                    fired: AtomicU64::new(f.fired.load(Ordering::Relaxed)),
                    injected: f.injected.clone(),
                })
                .collect(),
            None => Vec::new(),
        };
        points.push(Failpoint {
            site,
            kind,
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            injected: Counter::default(),
        });
        FaultPlan {
            inner: Some(Arc::new(points)),
        }
    }

    /// Parses a plan from its command-line spec: comma-separated
    /// `site=kind` entries where `kind` is one of
    ///
    /// * `delay:<ms>` — sleep `<ms>` milliseconds,
    /// * `error` or `error:<message>` — fail with a message,
    /// * `panic` — panic at the site,
    /// * `flaky:<p>` or `flaky:<p>:<seed>` — fail with probability
    ///   `<p>` (deterministic; seed defaults to 1).
    ///
    /// Example: `lane.penalty=flaky:0.25:42,cache.get=delay:5`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::disabled();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (site, kind_spec) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry {entry:?} is not site=kind"))?;
            let mut fields = kind_spec.split(':');
            let kind = match fields.next().unwrap_or("") {
                "delay" => {
                    let ms: u64 = fields
                        .next()
                        .ok_or_else(|| format!("delay at {site:?} needs milliseconds"))?
                        .trim_end_matches("ms")
                        .parse()
                        .map_err(|_| format!("bad delay for {site:?}"))?;
                    FaultKind::Delay(Duration::from_millis(ms))
                }
                "error" => FaultKind::Error(fields.next().unwrap_or("injected fault").to_string()),
                "panic" => FaultKind::Panic,
                "flaky" => {
                    let p: f64 = fields
                        .next()
                        .ok_or_else(|| format!("flaky at {site:?} needs a probability"))?
                        .parse()
                        .map_err(|_| format!("bad probability for {site:?}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability for {site:?} must be in [0,1]"));
                    }
                    let seed: u64 = match fields.next() {
                        Some(s) => s.parse().map_err(|_| format!("bad seed for {site:?}"))?,
                        None => 1,
                    };
                    FaultKind::Flaky { p, seed }
                }
                other => return Err(format!("unknown fault kind {other:?} at {site:?}")),
            };
            plan = plan.with(site.trim(), kind);
        }
        Ok(plan)
    }

    /// Resolves the per-site injection counters from `registry`
    /// (`arp_serve_faults_injected_total{site,kind}`). Call once at
    /// service construction; a plan left unattached counts into detached
    /// no-op counters.
    pub fn attach_metrics(self, registry: &Registry) -> FaultPlan {
        let Some(points) = self.inner else {
            return self;
        };
        let attached = points
            .iter()
            .map(|f| Failpoint {
                site: f.site.clone(),
                kind: f.kind.clone(),
                hits: AtomicU64::new(f.hits.load(Ordering::Relaxed)),
                fired: AtomicU64::new(f.fired.load(Ordering::Relaxed)),
                injected: registry.counter(
                    "arp_serve_faults_injected_total",
                    "Faults fired by the failpoint plan, by site and kind.",
                    &[("site", &f.site), ("kind", f.kind.label())],
                ),
            })
            .collect();
        FaultPlan {
            inner: Some(Arc::new(attached)),
        }
    }

    /// Checks `site` and *fires* its fault if armed: sleeps on
    /// [`FaultKind::Delay`], panics on [`FaultKind::Panic`], and returns
    /// `Err` on [`FaultKind::Error`] / a failing [`FaultKind::Flaky`]
    /// draw. The disabled plan returns `Ok(())` after a single branch.
    pub fn fire(&self, site: &str) -> Result<(), String> {
        let Some(points) = &self.inner else {
            return Ok(());
        };
        let Some(point) = points.iter().find(|f| f.site == site) else {
            return Ok(());
        };
        let hit = point.hits.fetch_add(1, Ordering::Relaxed);
        match &point.kind {
            FaultKind::Delay(d) => {
                point.fired();
                std::thread::sleep(*d);
                Ok(())
            }
            FaultKind::Error(message) => {
                point.fired();
                Err(format!("injected fault at {site}: {message}"))
            }
            FaultKind::Panic => {
                point.fired();
                panic!("injected panic at {site}");
            }
            FaultKind::Flaky { p, seed } => {
                // Map the (seed, hit) pair to a uniform draw in [0, 1).
                let draw = splitmix64(seed.wrapping_add(hit).wrapping_mul(0x2545_f491_4f6c_dd1d));
                let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
                if unit < *p {
                    point.fired();
                    Err(format!("injected flaky fault at {site} (hit {hit})"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Total faults fired at `site` so far (0 for unarmed sites).
    pub fn injected_at(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|points| points.iter().find(|f| f.site == site))
            .map(|f| f.fired.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_a_no_op() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        assert!(plan.fire("lane.penalty").is_ok());
        assert_eq!(plan.injected_at("lane.penalty"), 0);
    }

    #[test]
    fn unarmed_sites_pass_through() {
        let plan = FaultPlan::disabled().with("cache.get", FaultKind::Panic);
        assert!(plan.fire("lane.penalty").is_ok());
    }

    #[test]
    fn error_fault_fails_every_hit() {
        let plan = FaultPlan::disabled().with("lane.x", FaultKind::Error("boom".into()));
        for _ in 0..3 {
            let err = plan.fire("lane.x").unwrap_err();
            assert!(err.contains("boom"), "{err}");
        }
        assert_eq!(plan.injected_at("lane.x"), 3);
    }

    #[test]
    #[should_panic(expected = "injected panic at lane.y")]
    fn panic_fault_panics() {
        let plan = FaultPlan::disabled().with("lane.y", FaultKind::Panic);
        let _ = plan.fire("lane.y");
    }

    #[test]
    fn flaky_is_deterministic_and_near_its_rate() {
        let make = || FaultPlan::disabled().with("lane.z", FaultKind::Flaky { p: 0.25, seed: 42 });
        let a = make();
        let b = make();
        let run = |plan: &FaultPlan| -> Vec<bool> {
            (0..400).map(|_| plan.fire("lane.z").is_err()).collect()
        };
        let fa = run(&a);
        let fb = run(&b);
        assert_eq!(fa, fb, "same seed must flip the same coins");
        let rate = fa.iter().filter(|&&f| f).count() as f64 / fa.len() as f64;
        assert!(
            (rate - 0.25).abs() < 0.08,
            "empirical rate {rate} too far from 0.25"
        );
        // A different seed flips different coins.
        let c = FaultPlan::disabled().with("lane.z", FaultKind::Flaky { p: 0.25, seed: 7 });
        assert_ne!(run(&c), fa);
    }

    #[test]
    fn flaky_extremes() {
        let never = FaultPlan::disabled().with("s", FaultKind::Flaky { p: 0.0, seed: 3 });
        let always = FaultPlan::disabled().with("s", FaultKind::Flaky { p: 1.0, seed: 3 });
        for _ in 0..50 {
            assert!(never.fire("s").is_ok());
            assert!(always.fire("s").is_err());
        }
    }

    #[test]
    fn delay_fault_sleeps() {
        let plan =
            FaultPlan::disabled().with("cache.get", FaultKind::Delay(Duration::from_millis(20)));
        let start = std::time::Instant::now();
        assert!(plan.fire("cache.get").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert_eq!(plan.injected_at("cache.get"), 1);
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let plan = FaultPlan::parse(
            "lane.penalty=flaky:0.25:42, cache.get=delay:5ms, backend.snap=error:no snap, queue.push=panic",
        )
        .unwrap();
        assert!(plan.is_enabled());
        let err = plan.fire("backend.snap").unwrap_err();
        assert!(err.contains("no snap"), "{err}");
        assert!(plan.fire("cache.get").is_ok());
        // Re-arming a site replaces its kind.
        let plan = plan.with("backend.snap", FaultKind::Error("other".into()));
        assert!(plan.fire("backend.snap").unwrap_err().contains("other"));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("lane.penalty").is_err());
        assert!(FaultPlan::parse("s=explode").is_err());
        assert!(FaultPlan::parse("s=flaky:1.5").is_err());
        assert!(FaultPlan::parse("s=flaky").is_err());
        assert!(FaultPlan::parse("s=delay:abc").is_err());
        // The empty spec is the disabled plan, not an error.
        assert_eq!(FaultPlan::parse("").map(|p| p.is_enabled()), Ok(false));
    }

    #[test]
    fn with_preserves_untouched_sites_progress() {
        // Arming a new site must not reset the others: their fired counts
        // survive, and a flaky stream continues where it left off rather
        // than replaying its prefix.
        let plan = FaultPlan::disabled().with("lane.a", FaultKind::Error("x".into()));
        let _ = plan.fire("lane.a");
        let plan = plan.with("lane.b", FaultKind::Panic);
        assert_eq!(plan.injected_at("lane.a"), 1, "fired count reset by with()");

        let flaky = || FaultKind::Flaky { p: 0.5, seed: 9 };
        let reference = FaultPlan::disabled().with("lane.z", flaky());
        let expected: Vec<bool> = (0..40).map(|_| reference.fire("lane.z").is_err()).collect();
        let plan = FaultPlan::disabled().with("lane.z", flaky());
        let mut observed: Vec<bool> = (0..20).map(|_| plan.fire("lane.z").is_err()).collect();
        let plan = plan.with("lane.b", FaultKind::Panic);
        observed.extend((0..20).map(|_| plan.fire("lane.z").is_err()));
        assert_eq!(observed, expected, "flaky stream restarted by with()");
    }

    #[test]
    fn attached_metrics_land_in_the_registry() {
        let registry = Registry::new();
        let plan = FaultPlan::parse("lane.a=error")
            .unwrap()
            .attach_metrics(&registry);
        let _ = plan.fire("lane.a");
        let _ = plan.fire("lane.a");
        assert_eq!(
            registry.counter_value(
                "arp_serve_faults_injected_total",
                &[("site", "lane.a"), ("kind", "error")]
            ),
            2
        );
    }
}
