//! Cooperative shutdown signalling for accept loops.
//!
//! `TcpListener::accept` has no portable cancellation, so the handle
//! pairs an atomic flag with a self-connect: `request_shutdown` sets the
//! flag and then opens (and immediately drops) one TCP connection to the
//! listener's own address, waking the accept loop so it can observe the
//! flag and return instead of blocking forever. The HTTP server drains
//! in-flight connections before returning, which is what lets tests run a
//! real socket server without leaking its thread.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A callback the serving loop runs after draining.
type DrainHook = Box<dyn Fn() + Send + Sync>;

/// A cloneable handle that asks a serving loop to stop.
#[derive(Clone, Default)]
pub struct ShutdownHandle {
    requested: Arc<AtomicBool>,
    listener_addr: Arc<Mutex<Option<SocketAddr>>>,
    /// Callbacks the serving loop runs exactly once after it has stopped
    /// accepting and drained in-flight connections — e.g. flushing a
    /// final durable-state snapshot.
    drain_hooks: Arc<Mutex<Vec<DrainHook>>>,
    drained: Arc<AtomicBool>,
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle")
            .field("requested", &self.is_shutdown())
            .field(
                "drain_hooks",
                &self.drain_hooks.lock().map(|h| h.len()).unwrap_or(0),
            )
            .finish_non_exhaustive()
    }
}

impl ShutdownHandle {
    /// A fresh handle with shutdown not yet requested.
    pub fn new() -> ShutdownHandle {
        ShutdownHandle::default()
    }

    /// Registers a callback to run after the serving loop has drained.
    /// Hooks run on the serving thread, after the last in-flight
    /// connection finished (or the drain window elapsed), in
    /// registration order.
    pub fn on_drain(&self, hook: impl Fn() + Send + Sync + 'static) {
        self.drain_hooks
            .lock()
            .expect("shutdown handle poisoned")
            .push(Box::new(hook));
    }

    /// Runs the registered drain hooks. Idempotent: the serving loop
    /// calls this once at the end of its drain; a second call (another
    /// loop sharing the handle, a belt-and-braces caller) is a no-op.
    pub fn run_drain_hooks(&self) {
        if self.drained.swap(true, Ordering::AcqRel) {
            return;
        }
        let hooks = self.drain_hooks.lock().expect("shutdown handle poisoned");
        for hook in hooks.iter() {
            hook();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.requested.load(Ordering::Acquire)
    }

    /// Records the accept loop's local address so `request_shutdown` can
    /// wake it. Called by the serving loop once its listener is bound.
    pub fn register_listener(&self, addr: SocketAddr) {
        *self.listener_addr.lock().expect("shutdown handle poisoned") = Some(addr);
    }

    /// Requests shutdown and wakes the registered accept loop (if any) by
    /// briefly connecting to it. Idempotent.
    pub fn request_shutdown(&self) {
        self.requested.store(true, Ordering::Release);
        let addr = *self.listener_addr.lock().expect("shutdown handle poisoned");
        if let Some(addr) = addr {
            // The connection exists only to pop the accept loop out of
            // `accept()`; errors (loop already gone) are fine.
            if let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
                drop(stream);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn flag_flips_once_requested() {
        let handle = ShutdownHandle::new();
        assert!(!handle.is_shutdown());
        handle.request_shutdown();
        assert!(handle.is_shutdown());
        handle.request_shutdown(); // idempotent
        assert!(handle.is_shutdown());
    }

    #[test]
    fn clones_share_the_flag() {
        let handle = ShutdownHandle::new();
        let clone = handle.clone();
        handle.request_shutdown();
        assert!(clone.is_shutdown());
    }

    #[test]
    fn drain_hooks_run_exactly_once_in_order() {
        use std::sync::atomic::AtomicU32;
        let handle = ShutdownHandle::new();
        let order: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let counter = Arc::new(AtomicU32::new(0));
        for i in 0..3u32 {
            let order = Arc::clone(&order);
            let counter = Arc::clone(&counter);
            handle.on_drain(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                order.lock().unwrap().push(i);
            });
        }
        // Clones share the hook list AND the ran-once latch.
        let clone = handle.clone();
        clone.run_drain_hooks();
        handle.run_drain_hooks();
        assert_eq!(counter.load(Ordering::Relaxed), 3, "each hook ran once");
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn request_wakes_a_blocking_accept_loop() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let handle = ShutdownHandle::new();
        handle.register_listener(listener.local_addr().expect("local addr"));
        let loop_handle = {
            let shutdown = handle.clone();
            std::thread::spawn(move || {
                let mut accepted = 0u32;
                loop {
                    if shutdown.is_shutdown() {
                        return accepted;
                    }
                    match listener.accept() {
                        Ok(_) => accepted += 1,
                        Err(_) => return accepted,
                    }
                }
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        handle.request_shutdown();
        let accepted = loop_handle.join().expect("accept loop exits");
        // The wake-up connection itself may or may not be counted depending
        // on interleaving; the property under test is that the loop exits.
        assert!(accepted <= 1);
    }
}
