//! Cooperative cancellation tokens.
//!
//! A [`CancelToken`] is a shared flag the serving layer trips when a
//! request's deadline expires. Lanes that are *queued* never start (the
//! fan-out's abandoned flag already covered that); lanes that are
//! *running* observe the token — directly, or through a search budget
//! built over the same flag (`arp-core`'s `SearchBudget::with_cancel_flag`
//! polls it every few thousand heap pops) — and return early with
//! whatever partial result they have. Tripping is **sticky**: once
//! cancelled, a token stays cancelled.
//!
//! The serving crate deliberately does not depend on the routing core, so
//! this type only carries the flag; the backend decides what "observe"
//! means for its computation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A sticky, shareable cancellation flag. Cloning shares the flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token. Every clone (and everything built over
    /// [`CancelToken::flag`]) observes the trip; it cannot be undone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The underlying flag, for handing to machinery that polls an
    /// `AtomicBool` directly (e.g. a search budget).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_trip() {
        let token = CancelToken::new();
        let observer = token.clone();
        assert!(!observer.is_cancelled());
        token.cancel();
        assert!(observer.is_cancelled());
        assert!(observer.flag().load(Ordering::Acquire));
    }

    #[test]
    fn cancel_is_sticky_and_idempotent() {
        let token = CancelToken::new();
        token.cancel();
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn flag_handed_out_before_the_trip_still_observes_it() {
        let token = CancelToken::new();
        let flag = token.flag();
        token.cancel();
        assert!(flag.load(Ordering::Acquire));
    }
}
