//! `arp-serve` — the production serving layer between the HTTP front-end
//! and the routing techniques.
//!
//! The paper's user study compares four alternative-route techniques on
//! every query; serving that comparison interactively means computing
//! four independent route sets per request. This crate turns that shape
//! into a serving architecture:
//!
//! * [`WorkerPool`] + [`BoundedQueue`] — a fixed-size thread pool over a
//!   bounded MPMC queue (`Mutex` + `Condvar`, std only). Each request
//!   fans its techniques out as one job per *lane* ([`scatter`]), so a
//!   request costs roughly the slowest technique instead of their sum.
//! * [`ShardedCache`] — an LRU + TTL route cache keyed per lane by
//!   (city, snapped source, snapped target, technique, k), so repeat
//!   queries bypass recomputation entirely and partially-cached queries
//!   recompute only their missing lanes.
//! * [`Admission`] + [`Deadline`] — bounded in-flight requests with load
//!   shedding (HTTP 503 + `Retry-After`) and per-request deadlines.
//! * [`CancelToken`] + [`scatter_cancellable`] — cooperative cancellation
//!   of *in-flight* work: an expired deadline trips a per-request token
//!   that running lanes observe (via a search budget in the real
//!   backend), so a timed-out request frees its workers within one
//!   budget-check interval and the client gets whatever routes finished
//!   (a truncated `200`) instead of a full-cost late response.
//! * [`ShutdownHandle`] — cooperative shutdown for accept loops, so
//!   servers drain in-flight work and tests do not leak threads.
//! * [`ServeMetrics`] — queue depth, shed/timeout counters, cache
//!   hit/miss/eviction/stale counters and per-stage latency histograms,
//!   all through `arp-obs` and exported by the demo's `/api/metrics`.
//! * **Fault tolerance** (DESIGN.md §9) — [`FaultPlan`] failpoint
//!   injection (zero-overhead when disabled), per-technique
//!   [`CircuitBreaker`]s, a deadline-aware [`RetryPolicy`], and a
//!   degraded-response ladder: a failed or panicked lane is retried,
//!   then marked [`LaneStatus::Failed`] while the other techniques'
//!   routes are still served. [`RouteService::health`] snapshots it all
//!   for `/api/health`.
//!
//! The crate is deliberately backend-agnostic: [`RouteService`] drives
//! any [`RouteBackend`], and `arp-demo` provides the road-network one.
//! Request lifecycle: accept → admit → cache probe → prepare (shared
//! substrate) → fan-out → assemble (docs/ARCHITECTURE.md walks through
//! it end to end).

#![warn(missing_docs)]

mod admission;
mod breaker;
mod cache;
mod cancel;
mod fault;
mod metrics;
mod pool;
mod queue;
mod retry;
mod service;
mod shutdown;

pub use admission::{adaptive_retry_after, Admission, Deadline, Permit};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::ShardedCache;
pub use cancel::CancelToken;
pub use fault::{sites, FaultKind, FaultPlan};
pub use metrics::{CacheMetrics, ServeMetrics};
pub use pool::{scatter, scatter_cancellable, Fanout, FanoutError, Job, WorkerPool};
pub use queue::{BoundedQueue, PushError};
pub use retry::{LaneLatency, RetryPolicy, RetryState};
pub use service::{
    HealthReport, HealthVerdict, LaneError, LaneHealth, LaneOutcome, LaneStatus, RouteBackend,
    RouteService, ServeConfig, ServeError,
};
pub use shutdown::ShutdownHandle;
