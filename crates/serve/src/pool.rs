//! A fixed-size worker pool and the fan-out primitive built on it.
//!
//! The pool runs *technique-level* jobs only: one route request fans out
//! into one job per alternative-route technique, so a four-technique query
//! costs roughly `max(technique)` wall-clock instead of their sum. The
//! requesting thread itself never enters the pool — it submits lanes,
//! then waits on a condvar with the request's deadline. Keeping request
//! orchestration off the pool is what rules out the classic deadlock of
//! request-jobs waiting behind the technique-jobs they spawned.
//!
//! Two deliberate degradation paths:
//!
//! * **Queue full** — the lane runs *inline* on the requesting thread
//!   (counted by `arp_serve_inline_fallback_total`). The request slows to
//!   the serial cost but still succeeds; shedding whole requests is the
//!   admission layer's job, not the pool's.
//! * **Deadline hit** — the requester stops waiting and marks the fan-out
//!   abandoned; still-queued lanes observe the flag and return without
//!   computing, so a timed-out request stops consuming workers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use std::time::Duration;

use crate::cancel::CancelToken;
use crate::queue::{BoundedQueue, PushError};
use crate::Deadline;
use arp_obs::{Counter, Gauge};

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads over a [`BoundedQueue`].
pub struct WorkerPool {
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    jobs_executed: Counter,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) consuming a queue of at
    /// most `queue_capacity` pending jobs. `depth` tracks the backlog;
    /// `jobs_executed` counts completed jobs.
    pub fn new(
        workers: usize,
        queue_capacity: usize,
        depth: Gauge,
        jobs_executed: Counter,
    ) -> WorkerPool {
        let queue = Arc::new(BoundedQueue::new(queue_capacity, depth));
        let workers = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let executed = jobs_executed.clone();
                std::thread::Builder::new()
                    .name(format!("arp-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            // A panicking job must not kill the worker: swallow
                            // the unwind and keep serving. The fan-out's drop
                            // guard has already recorded the lane as failed.
                            let _ = catch_unwind(AssertUnwindSafe(job));
                            executed.inc();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            queue,
            workers,
            jobs_executed,
        }
    }

    /// Enqueues `job`, or hands it back when the queue is full or closed.
    pub fn submit(&self, job: Job) -> Result<(), (Job, PushError)> {
        self.queue.try_push(job)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Current backlog length.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Backlog capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Jobs completed so far.
    pub fn jobs_executed(&self) -> u64 {
        self.jobs_executed.get()
    }

    /// Graceful shutdown: close the queue, let the workers drain the
    /// backlog, and join them.
    pub fn shutdown(mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Mirrors `shutdown()` for pools dropped without an explicit call
        // (e.g. on unwind): close and drain so no job is lost.
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// How a fan-out ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FanoutError {
    /// The deadline expired before every lane finished; still-queued lanes
    /// were abandoned.
    DeadlineExceeded,
    /// A lane panicked (its slot stayed empty).
    LaneFailed,
}

struct FanoutState<T> {
    slots: Mutex<(Vec<Option<T>>, usize)>, // (results, lanes still pending)
    done: Condvar,
    abandoned: AtomicBool,
}

/// Decrements the pending count even if the lane's closure panics, so the
/// waiting requester is always woken.
struct LaneGuard<'a, T> {
    state: &'a FanoutState<T>,
    completed: bool,
}

impl<T> Drop for LaneGuard<'_, T> {
    fn drop(&mut self) {
        if !self.completed {
            let mut slots = self.state.slots.lock().expect("fan-out poisoned");
            slots.1 -= 1;
            drop(slots);
            self.state.done.notify_all();
        }
    }
}

fn run_lane<T, F>(state: &FanoutState<T>, index: usize, task: F)
where
    F: FnOnce() -> T,
{
    let mut guard = LaneGuard {
        state,
        completed: false,
    };
    if state.abandoned.load(Ordering::Acquire) {
        // The requester already gave up; don't burn a worker on it.
        return;
    }
    let value = task();
    let mut slots = state.slots.lock().expect("fan-out poisoned");
    slots.0[index] = Some(value);
    slots.1 -= 1;
    drop(slots);
    guard.completed = true;
    state.done.notify_all();
}

/// Runs every task on the pool in parallel and waits for all of them,
/// bounded by `deadline`. Returns the results in task order.
///
/// Per-lane degradation: a task whose submission finds the queue full runs
/// inline on the calling thread (`inline_fallback` is incremented). If the
/// deadline expires first, still-queued tasks are abandoned and
/// [`FanoutError::DeadlineExceeded`] is returned.
pub fn scatter<T, F>(
    pool: &WorkerPool,
    tasks: Vec<F>,
    deadline: Deadline,
    inline_fallback: &Counter,
) -> Result<Vec<T>, FanoutError>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let lanes = tasks.len();
    if lanes == 0 {
        return Ok(Vec::new());
    }
    let state = Arc::new(FanoutState {
        slots: Mutex::new(((0..lanes).map(|_| None).collect(), lanes)),
        done: Condvar::new(),
        abandoned: AtomicBool::new(false),
    });

    let mut inline = Vec::new();
    for (index, task) in tasks.into_iter().enumerate() {
        let lane_state = Arc::clone(&state);
        let job: Job = Box::new(move || run_lane(&lane_state, index, task));
        if let Err((job, _)) = pool.submit(job) {
            // Queue full (or closing): degrade to serial on this thread
            // rather than failing the whole request. Run after submitting
            // the other lanes so they overlap with the inline work.
            inline.push(job);
        }
    }
    for job in inline {
        inline_fallback.inc();
        job();
    }

    let mut slots = state.slots.lock().expect("fan-out poisoned");
    while slots.1 > 0 {
        let Some(remaining) = deadline.remaining() else {
            state.abandoned.store(true, Ordering::Release);
            return Err(FanoutError::DeadlineExceeded);
        };
        let (guard, timeout) = state
            .done
            .wait_timeout(slots, remaining)
            .expect("fan-out poisoned");
        slots = guard;
        if timeout.timed_out() && slots.1 > 0 && deadline.expired() {
            state.abandoned.store(true, Ordering::Release);
            return Err(FanoutError::DeadlineExceeded);
        }
    }
    let results: Option<Vec<T>> = slots.0.drain(..).collect();
    results.ok_or(FanoutError::LaneFailed)
}

/// The outcome of a cancellable fan-out (see [`scatter_cancellable`]).
#[derive(Debug)]
pub struct Fanout<T> {
    /// Per-lane results in task order. `None` means the lane panicked,
    /// was abandoned while queued, or did not stop within the grace
    /// period after cancellation.
    pub slots: Vec<Option<T>>,
    /// Whether the deadline expired before every lane finished (and the
    /// cancel token was therefore tripped).
    pub deadline_hit: bool,
}

/// [`scatter`]'s cancellation-aware sibling: runs every task on the pool,
/// bounded by `deadline`, and on expiry **trips `token`** instead of
/// walking away from running lanes.
///
/// The three-rung degradation ladder (DESIGN.md §8):
///
/// 1. still-*queued* lanes observe the abandoned flag and never start;
/// 2. *running* lanes observe the tripped token (typically through a
///    search budget built over [`CancelToken::flag`]) and return a
///    partial result, which is collected during a bounded `grace` wait —
///    one budget-check interval is enough for a cooperative lane;
/// 3. lanes that still haven't stopped when the grace expires are left
///    behind (their slot stays `None`) so the requester's latency is
///    bounded even over a non-cooperative backend.
///
/// Unlike [`scatter`] this never fails: the caller decides what a partial
/// [`Fanout`] is worth. With no deadline pressure the slots are exactly
/// `scatter`'s results.
pub fn scatter_cancellable<T, F>(
    pool: &WorkerPool,
    tasks: Vec<F>,
    deadline: Deadline,
    token: &CancelToken,
    grace: Duration,
    inline_fallback: &Counter,
) -> Fanout<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let lanes = tasks.len();
    if lanes == 0 {
        return Fanout {
            slots: Vec::new(),
            deadline_hit: false,
        };
    }
    let state = Arc::new(FanoutState {
        slots: Mutex::new(((0..lanes).map(|_| None).collect(), lanes)),
        done: Condvar::new(),
        abandoned: AtomicBool::new(false),
    });

    let mut inline = Vec::new();
    for (index, task) in tasks.into_iter().enumerate() {
        let lane_state = Arc::clone(&state);
        let job: Job = Box::new(move || run_lane(&lane_state, index, task));
        if let Err((job, _)) = pool.submit(job) {
            inline.push(job);
        }
    }
    for job in inline {
        inline_fallback.inc();
        job();
    }

    let mut deadline_hit = false;
    let mut slots = state.slots.lock().expect("fan-out poisoned");
    while slots.1 > 0 {
        let Some(remaining) = deadline.remaining() else {
            deadline_hit = true;
            break;
        };
        let (guard, timeout) = state
            .done
            .wait_timeout(slots, remaining)
            .expect("fan-out poisoned");
        slots = guard;
        if timeout.timed_out() && slots.1 > 0 && deadline.expired() {
            deadline_hit = true;
            break;
        }
    }
    if deadline_hit {
        state.abandoned.store(true, Ordering::Release);
        token.cancel();
        // Grace wait: collect the partials of lanes that observe the trip.
        // A zero grace does not wait at all (`Deadline::after(ZERO)` is
        // already expired).
        let grace_deadline = Deadline::after(grace);
        while slots.1 > 0 {
            let Some(remaining) = grace_deadline.remaining() else {
                break;
            };
            let (guard, _) = state
                .done
                .wait_timeout(slots, remaining)
                .expect("fan-out poisoned");
            slots = guard;
        }
    }
    // Take each slot individually, keeping the vector's length: a lane
    // that outlives the grace period still writes into its (now unread)
    // slot, so the backing vector must stay sized for it.
    let results: Vec<Option<T>> = slots.0.iter_mut().map(Option::take).collect();
    drop(slots);
    Fanout {
        slots: results,
        deadline_hit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn pool(workers: usize, capacity: usize) -> WorkerPool {
        WorkerPool::new(workers, capacity, Gauge::default(), Counter::default())
    }

    #[test]
    fn scatter_returns_results_in_task_order() {
        let p = pool(4, 16);
        let tasks: Vec<_> = (0..8u64).map(|i| move || i * 10).collect();
        let out = scatter(&p, tasks, Deadline::never(), &Counter::default()).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn scatter_overlaps_lanes_across_workers() {
        // Four 30 ms lanes on four workers should take well under the
        // 120 ms serial cost.
        let p = pool(4, 16);
        let tasks: Vec<_> = (0..4)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(30));
                    i
                }
            })
            .collect();
        let start = std::time::Instant::now();
        let out = scatter(&p, tasks, Deadline::never(), &Counter::default()).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(
            start.elapsed() < Duration::from_millis(110),
            "lanes did not overlap: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn full_queue_degrades_to_inline_execution() {
        // One worker stuck on a long job + capacity 1 forces later lanes
        // inline; the fan-out must still complete with correct results.
        let p = pool(1, 1);
        assert!(p
            .submit(Box::new(|| {
                std::thread::sleep(Duration::from_millis(50));
            }))
            .is_ok());
        let registry = arp_obs::Registry::new();
        let inline = registry.counter("inline", "", &[]);
        let tasks: Vec<_> = (0..4u64).map(|i| move || i + 1).collect();
        let out = scatter(&p, tasks, Deadline::never(), &inline).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert!(
            inline.get() >= 3,
            "expected inline fallbacks, got {}",
            inline.get()
        );
    }

    #[test]
    fn deadline_abandons_queued_lanes() {
        let p = pool(1, 16);
        let ran = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..6)
            .map(|_| {
                let ran = Arc::clone(&ran);
                move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(40));
                }
            })
            .collect();
        let err = scatter(
            &p,
            tasks,
            Deadline::after(Duration::from_millis(60)),
            &Counter::default(),
        )
        .unwrap_err();
        assert_eq!(err, FanoutError::DeadlineExceeded);
        // Let the backlog drain, then check the abandoned lanes never ran.
        std::thread::sleep(Duration::from_millis(150));
        assert!(
            ran.load(Ordering::SeqCst) < 6,
            "abandoned lanes still executed"
        );
    }

    #[test]
    fn panicking_lane_fails_the_fanout_but_not_the_pool() {
        let p = pool(2, 16);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("lane boom")),
            Box::new(|| 3),
        ];
        let err = scatter(&p, tasks, Deadline::never(), &Counter::default()).unwrap_err();
        assert_eq!(err, FanoutError::LaneFailed);
        // The pool survives and keeps serving.
        let out = scatter(
            &p,
            vec![|| 7u32, || 8u32],
            Deadline::never(),
            &Counter::default(),
        )
        .unwrap();
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    fn shutdown_drains_the_backlog() {
        let p = pool(1, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let done = Arc::clone(&done);
            assert!(p
                .submit(Box::new(move || {
                    std::thread::sleep(Duration::from_millis(5));
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .is_ok());
        }
        p.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn pool_has_at_least_one_worker() {
        let p = pool(0, 4);
        assert_eq!(p.workers(), 1);
        let out = scatter(&p, vec![|| 42u8], Deadline::never(), &Counter::default()).unwrap();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn cancellable_scatter_without_pressure_matches_scatter() {
        let p = pool(4, 16);
        let token = CancelToken::new();
        let tasks: Vec<_> = (0..6u64).map(|i| move || i * 2).collect();
        let out = scatter_cancellable(
            &p,
            tasks,
            Deadline::never(),
            &token,
            Duration::from_millis(100),
            &Counter::default(),
        );
        assert!(!out.deadline_hit);
        assert!(!token.is_cancelled());
        let values: Vec<u64> = out.slots.into_iter().map(Option::unwrap).collect();
        assert_eq!(values, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn deadline_trips_the_token_and_collects_cooperative_partials() {
        // One worker: lane 0 runs, lanes 1-2 queue behind it. Lane 0
        // cooperates — it polls the token and returns a partial marker —
        // so the fan-out gets its result during the grace wait, while the
        // queued lanes are abandoned outright.
        let p = pool(1, 16);
        let token = CancelToken::new();
        let lane0 = token.clone();
        let mut tasks: Vec<Box<dyn FnOnce() -> &'static str + Send>> = vec![Box::new(move || {
            for _ in 0..1000 {
                if lane0.is_cancelled() {
                    return "partial";
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            "complete"
        })];
        for _ in 0..2 {
            tasks.push(Box::new(|| "queued"));
        }
        let out = scatter_cancellable(
            &p,
            tasks,
            Deadline::after(Duration::from_millis(30)),
            &token,
            Duration::from_millis(500),
            &Counter::default(),
        );
        assert!(out.deadline_hit);
        assert!(token.is_cancelled());
        assert_eq!(
            out.slots[0],
            Some("partial"),
            "running lane observed the trip"
        );
        assert_eq!(out.slots[1], None, "queued lane was abandoned");
        assert_eq!(out.slots[2], None, "queued lane was abandoned");
    }

    #[test]
    fn zero_grace_does_not_wait_for_non_cooperative_lanes() {
        let p = pool(1, 16);
        let token = CancelToken::new();
        let tasks: Vec<_> = vec![|| {
            std::thread::sleep(Duration::from_millis(120));
            7u8
        }];
        let start = std::time::Instant::now();
        let out = scatter_cancellable(
            &p,
            tasks,
            Deadline::after(Duration::from_millis(10)),
            &token,
            Duration::ZERO,
            &Counter::default(),
        );
        assert!(out.deadline_hit);
        assert_eq!(out.slots, vec![None]);
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "zero grace must not wait out the lane: {:?}",
            start.elapsed()
        );
    }
}
