//! Property tests for the sharded LRU + TTL route cache and the
//! per-technique circuit breaker.
//!
//! Both components take time as an explicit `now_ms` argument, so these
//! properties drive a manual clock and never sleep.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use arp_serve::{BreakerConfig, BreakerState, CacheMetrics, CircuitBreaker, ShardedCache};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The live entry count never exceeds the effective capacity, no
    /// matter the key churn.
    #[test]
    fn capacity_is_never_exceeded(
        capacity in 1usize..12,
        shards in 1usize..5,
        ops in proptest::collection::vec((0u8..32, 0u32..1_000, 0u64..6), 1..120),
    ) {
        let cache: ShardedCache<String, u32> =
            ShardedCache::new(capacity, shards, 0, CacheMetrics::default());
        let mut now = 0u64;
        for (key, value, advance) in ops {
            now += advance;
            cache.put(format!("k{key}"), value, now);
            prop_assert!(
                cache.len() <= cache.capacity(),
                "len {} exceeded capacity {}",
                cache.len(),
                cache.capacity()
            );
        }
    }

    /// Any hit returns the most recently put value for that key, and only
    /// while that entry is within its TTL. (Misses are always allowed —
    /// eviction may have removed the entry — but a *wrong* or *stale* hit
    /// never is.)
    #[test]
    fn hits_are_fresh_and_correct(
        ttl in 1u64..40,
        ops in proptest::collection::vec(
            (0u8..6, 0u32..1_000, 0u64..10, proptest::bool::ANY),
            1..100,
        ),
    ) {
        let cache: ShardedCache<String, u32> =
            ShardedCache::new(4, 2, ttl, CacheMetrics::default());
        let mut now = 0u64;
        let mut latest: HashMap<String, (u32, u64)> = HashMap::new();
        for (key, value, advance, is_put) in ops {
            now += advance;
            let key = format!("k{key}");
            if is_put {
                cache.put(key.clone(), value, now);
                latest.insert(key, (value, now));
            } else if let Some(got) = cache.get(&key, now) {
                let &(expected, put_at) = latest.get(&key).expect("hit for a never-put key");
                prop_assert_eq!(got, expected, "hit returned a superseded value");
                prop_assert!(
                    now < put_at + ttl,
                    "hit at {} for entry put at {} with ttl {}",
                    now,
                    put_at,
                    ttl
                );
            }
        }
    }

    /// With fewer distinct keys than capacity (so eviction is impossible),
    /// a get within the TTL always hits and returns the latest value.
    #[test]
    fn get_after_put_within_ttl_hits(
        ttl in 5u64..60,
        ops in proptest::collection::vec((0u8..4, 0u32..1_000, 0u64..4), 1..80),
    ) {
        // 4 distinct keys, capacity 16: no eviction can ever occur.
        let cache: ShardedCache<String, u32> =
            ShardedCache::new(16, 4, ttl, CacheMetrics::default());
        let mut now = 0u64;
        let mut latest: HashMap<String, (u32, u64)> = HashMap::new();
        for (key, value, advance) in ops {
            now += advance;
            let key = format!("k{key}");
            cache.put(key.clone(), value, now);
            latest.insert(key, (value, now));
            for (k, &(v, put_at)) in &latest {
                if now < put_at + ttl {
                    prop_assert_eq!(
                        cache.get(k, now),
                        Some(v),
                        "fresh un-evictable entry missed"
                    );
                }
            }
        }
    }

    /// Entries at or past their TTL always miss, and each expiry is
    /// counted as stale exactly once.
    #[test]
    fn expired_entries_always_miss(
        ttl in 1u64..50,
        extra in 0u64..30,
        value in 0u32..1_000,
    ) {
        let registry = arp_obs::Registry::new();
        let cache: ShardedCache<String, u32> =
            ShardedCache::new(8, 2, ttl, CacheMetrics::new(&registry));
        cache.put("k".to_string(), value, 0);
        prop_assert_eq!(cache.get(&"k".to_string(), ttl + extra), None);
        prop_assert_eq!(cache.metrics().stale.get(), 1);
        prop_assert_eq!(cache.len(), 0, "expired entry must be removed");
        // A second get is a plain miss, not another stale observation.
        prop_assert_eq!(cache.get(&"k".to_string(), ttl + extra), None);
        prop_assert_eq!(cache.metrics().stale.get(), 1);
        prop_assert_eq!(cache.metrics().misses.get(), 2);
    }

    /// The breaker state machine never recovers Open → Closed directly:
    /// every recovery passes through a HalfOpen probe. And while the
    /// cooldown is running, an open breaker refuses every acquire.
    #[test]
    fn breaker_never_closes_straight_from_open(
        window in 1usize..8,
        min_volume in 1usize..6,
        error_rate in 0.1f64..1.0,
        cooldown_ms in 1u64..40,
        ops in proptest::collection::vec((0u8..3, 0u64..20), 1..200),
    ) {
        let breaker = CircuitBreaker::new(BreakerConfig {
            window,
            min_volume,
            error_rate,
            cooldown_ms,
        });
        let mut now = 0u64;
        let mut prev = breaker.state();
        let mut opened_at = 0u64;
        for (op, advance) in ops {
            now += advance;
            match op {
                0 => breaker.record_success(now),
                1 => breaker.record_failure(now),
                _ => {
                    let admitted = breaker.try_acquire(now);
                    if prev == BreakerState::Open && now < opened_at + cooldown_ms {
                        prop_assert!(
                            !admitted,
                            "open breaker admitted a lane {}ms into a {}ms cooldown",
                            now - opened_at,
                            cooldown_ms
                        );
                    }
                }
            }
            let cur = breaker.state();
            prop_assert!(
                !(prev == BreakerState::Open && cur == BreakerState::Closed),
                "breaker closed straight from open, skipping the half-open probe"
            );
            if cur == BreakerState::Open && prev != BreakerState::Open {
                opened_at = now;
            }
            prev = cur;
        }
    }

    /// While the breaker is closed, its sliding window agrees exactly
    /// with a naive bounded-deque model: eviction never loses or
    /// double-counts a failure, so the error rate the trip decision sees
    /// is exact.
    #[test]
    fn breaker_window_eviction_keeps_the_error_rate_exact(
        window in 1usize..10,
        outcomes in proptest::collection::vec(proptest::bool::ANY, 1..150),
    ) {
        let breaker = CircuitBreaker::new(BreakerConfig {
            window,
            min_volume: 1,
            error_rate: 0.75,
            cooldown_ms: 1_000,
        });
        let mut model: VecDeque<bool> = VecDeque::new();
        for (i, failed) in outcomes.into_iter().enumerate() {
            if breaker.state() != BreakerState::Closed {
                break;
            }
            if model.len() == window {
                model.pop_front();
            }
            model.push_back(failed);
            if failed {
                breaker.record_failure(i as u64);
            } else {
                breaker.record_success(i as u64);
            }
            // The window is not cleared by a trip, so the comparison
            // holds even on the recording that opened the circuit.
            let expected = model.iter().filter(|&&f| f).count();
            prop_assert_eq!(breaker.window_failures(), expected, "failure count drifted");
            prop_assert_eq!(breaker.window_volume(), model.len(), "volume drifted");
        }
    }
}

proptest! {
    // Concurrency properties spawn real threads; fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hammering `record_failure` from many threads transitions the
    /// breaker Closed → Open exactly once (the transitions counter is how
    /// operators alert on flapping — double counting would page someone),
    /// and once the cooldown elapses exactly one concurrent acquire wins
    /// the half-open probe.
    #[test]
    fn concurrent_recordings_do_not_double_transition(
        threads in 2usize..6,
        per_thread in 1usize..30,
    ) {
        let registry = arp_obs::Registry::new();
        let transitions = registry.counter("test_breaker_transitions", "", &[]);
        let breaker = Arc::new(CircuitBreaker::with_instruments(
            BreakerConfig {
                window: 64,
                min_volume: 1,
                error_rate: 0.01,
                cooldown_ms: 1_000,
            },
            arp_obs::Gauge::default(),
            transitions.clone(),
        ));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let breaker = Arc::clone(&breaker);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        breaker.record_failure(i as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(breaker.state(), BreakerState::Open);
        prop_assert_eq!(transitions.get(), 1, "concurrent failures double-transitioned");

        // Past the cooldown, exactly one concurrent acquire becomes the
        // half-open probe; the rest stay short-circuited.
        let probe_time = 10_000u64;
        let admitted: usize = (0..threads)
            .map(|_| {
                let breaker = Arc::clone(&breaker);
                std::thread::spawn(move || breaker.try_acquire(probe_time))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| usize::from(h.join().unwrap()))
            .sum();
        prop_assert_eq!(admitted, 1, "half-open must admit a single probe");
        prop_assert_eq!(breaker.state(), BreakerState::HalfOpen);
    }
}
