//! Property tests for the sharded LRU + TTL route cache.
//!
//! The cache takes time as an explicit `now_ms` argument, so these
//! properties drive a manual clock and never sleep.

use std::collections::HashMap;

use arp_serve::{CacheMetrics, ShardedCache};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The live entry count never exceeds the effective capacity, no
    /// matter the key churn.
    #[test]
    fn capacity_is_never_exceeded(
        capacity in 1usize..12,
        shards in 1usize..5,
        ops in proptest::collection::vec((0u8..32, 0u32..1_000, 0u64..6), 1..120),
    ) {
        let cache: ShardedCache<String, u32> =
            ShardedCache::new(capacity, shards, 0, CacheMetrics::default());
        let mut now = 0u64;
        for (key, value, advance) in ops {
            now += advance;
            cache.put(format!("k{key}"), value, now);
            prop_assert!(
                cache.len() <= cache.capacity(),
                "len {} exceeded capacity {}",
                cache.len(),
                cache.capacity()
            );
        }
    }

    /// Any hit returns the most recently put value for that key, and only
    /// while that entry is within its TTL. (Misses are always allowed —
    /// eviction may have removed the entry — but a *wrong* or *stale* hit
    /// never is.)
    #[test]
    fn hits_are_fresh_and_correct(
        ttl in 1u64..40,
        ops in proptest::collection::vec(
            (0u8..6, 0u32..1_000, 0u64..10, proptest::bool::ANY),
            1..100,
        ),
    ) {
        let cache: ShardedCache<String, u32> =
            ShardedCache::new(4, 2, ttl, CacheMetrics::default());
        let mut now = 0u64;
        let mut latest: HashMap<String, (u32, u64)> = HashMap::new();
        for (key, value, advance, is_put) in ops {
            now += advance;
            let key = format!("k{key}");
            if is_put {
                cache.put(key.clone(), value, now);
                latest.insert(key, (value, now));
            } else if let Some(got) = cache.get(&key, now) {
                let &(expected, put_at) = latest.get(&key).expect("hit for a never-put key");
                prop_assert_eq!(got, expected, "hit returned a superseded value");
                prop_assert!(
                    now < put_at + ttl,
                    "hit at {} for entry put at {} with ttl {}",
                    now,
                    put_at,
                    ttl
                );
            }
        }
    }

    /// With fewer distinct keys than capacity (so eviction is impossible),
    /// a get within the TTL always hits and returns the latest value.
    #[test]
    fn get_after_put_within_ttl_hits(
        ttl in 5u64..60,
        ops in proptest::collection::vec((0u8..4, 0u32..1_000, 0u64..4), 1..80),
    ) {
        // 4 distinct keys, capacity 16: no eviction can ever occur.
        let cache: ShardedCache<String, u32> =
            ShardedCache::new(16, 4, ttl, CacheMetrics::default());
        let mut now = 0u64;
        let mut latest: HashMap<String, (u32, u64)> = HashMap::new();
        for (key, value, advance) in ops {
            now += advance;
            let key = format!("k{key}");
            cache.put(key.clone(), value, now);
            latest.insert(key, (value, now));
            for (k, &(v, put_at)) in &latest {
                if now < put_at + ttl {
                    prop_assert_eq!(
                        cache.get(k, now),
                        Some(v),
                        "fresh un-evictable entry missed"
                    );
                }
            }
        }
    }

    /// Entries at or past their TTL always miss, and each expiry is
    /// counted as stale exactly once.
    #[test]
    fn expired_entries_always_miss(
        ttl in 1u64..50,
        extra in 0u64..30,
        value in 0u32..1_000,
    ) {
        let registry = arp_obs::Registry::new();
        let cache: ShardedCache<String, u32> =
            ShardedCache::new(8, 2, ttl, CacheMetrics::new(&registry));
        cache.put("k".to_string(), value, 0);
        prop_assert_eq!(cache.get(&"k".to_string(), ttl + extra), None);
        prop_assert_eq!(cache.metrics().stale.get(), 1);
        prop_assert_eq!(cache.len(), 0, "expired entry must be removed");
        // A second get is a plain miss, not another stale observation.
        prop_assert_eq!(cache.get(&"k".to_string(), ttl + extra), None);
        prop_assert_eq!(cache.metrics().stale.get(), 1);
        prop_assert_eq!(cache.metrics().misses.get(), 2);
    }
}
