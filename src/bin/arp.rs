//! `arp` — command-line interface to the alternative-route-planning
//! toolkit.
//!
//! ```text
//! arp generate  <city> [--scale tiny|small|medium|large] [--seed N] [--out FILE]
//! arp export-osm <city> [--scale ...] [--seed N] --out FILE
//! arp route     <city|FILE.arn> --from LON,LAT --to LON,LAT
//!               [--technique plateaus|penalty|dissimilarity|google|esx|pareto|yen]
//!               [--k N] [--geojson FILE]
//! arp study     <city> [--scale ...] [--seed N]
//! arp serve     <city> [--port P] [--seed N] [--workers N] [--queue N] [--cache N]
//!               [--faults SPEC]  (e.g. `lane.penalty=flaky:0.2,cache.get=error:down`)
//!               [--traffic-tick-ms MS] [--traffic-seed N]  (live-traffic feed; off by default)
//!               [--ch on|off]  (the CH index tier; on by default)
//!               [--state-dir DIR]  (durable traffic state: journal + snapshots + crash recovery)
//!               [--fsync always|interval[:N]|never] [--snapshot-every N]
//!               [--trace-sample R] [--trace-buffer N] [--slow-ms MS]  (request tracing)
//! ```
//!
//! Flags are validated against a per-subcommand allowlist: an unknown
//! `--flag` is an error (it used to be silently ignored), and a flag
//! missing its value never swallows the next `--flag` as the value.

use std::collections::HashMap;
use std::process::ExitCode;

use alt_route_planner::prelude::*;
use arp_core::quality::turn_count;
use arp_roadnet::weight::ms_to_display_minutes;

fn usage() -> ! {
    eprintln!(
        "usage:\n  arp generate  <city> [--scale S] [--seed N] [--out FILE]\n  arp export-osm <city> [--scale S] [--seed N] --out FILE\n  arp route     <city|FILE.arn> --from LON,LAT --to LON,LAT [--technique T] [--k N] [--geojson FILE]\n  arp study     <city> [--scale S] [--seed N]\n  arp serve     <city> [--port P] [--seed N] [--workers N] [--queue N] [--cache N] [--faults SPEC] [--traffic-tick-ms MS] [--traffic-seed N] [--ch on|off] [--state-dir DIR] [--fsync always|interval[:N]|never] [--snapshot-every N] [--trace-sample R] [--trace-buffer N] [--slow-ms MS]\n\ncities: melbourne | dhaka | copenhagen   scales: tiny | small | medium | large"
    );
    std::process::exit(2)
}

/// The flags each subcommand accepts. `None` for an unknown subcommand —
/// the caller reports it before any flag is looked at.
fn allowed_flags(cmd: &str) -> Option<&'static [&'static str]> {
    Some(match cmd {
        "generate" | "export-osm" => &["scale", "seed", "out"],
        "route" => &["scale", "seed", "from", "to", "technique", "k", "geojson"],
        "study" => &["scale", "seed"],
        "serve" => &[
            "port",
            "seed",
            "scale",
            "workers",
            "queue",
            "cache",
            "faults",
            "traffic-tick-ms",
            "traffic-seed",
            "ch",
            "state-dir",
            "fsync",
            "snapshot-every",
            "trace-sample",
            "trace-buffer",
            "slow-ms",
        ],
        _ => return None,
    })
}

/// Splits argv into positional args and `--key value` flags, validated
/// against the subcommand's allowlist.
///
/// Two historical bugs are rejected here rather than silently absorbed:
/// an unknown flag used to be accepted and ignored (a typo like
/// `--trafic-tick-ms` left the feed off without a word), and a `--key`
/// missing its value used to swallow the next `--flag` as the value
/// (`--traffic-tick-ms --workers 4` parsed as tick "--workers" plus a
/// stray positional "4").
fn parse_args(
    cmd: &str,
    args: &[String],
) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let Some(allowed) = allowed_flags(cmd) else {
        return Err(format!("unknown command {cmd:?}"));
    };
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if !allowed.contains(&key) {
                return Err(format!(
                    "unknown flag --{key} for `arp {cmd}` (accepted: {})",
                    allowed
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
            match args.get(i + 1) {
                None => return Err(format!("missing value for --{key}")),
                Some(value) if value.starts_with("--") => {
                    return Err(format!(
                        "missing value for --{key} (next argument {value:?} is a flag)"
                    ))
                }
                Some(value) => {
                    flags.insert(key.to_string(), value.clone());
                }
            }
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn parse_scale(flags: &HashMap<String, String>) -> Scale {
    match flags.get("scale").map(String::as_str) {
        None | Some("medium") => Scale::Medium,
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        Some("large") => Scale::Large,
        Some(other) => {
            eprintln!("unknown scale {other:?}");
            usage();
        }
    }
}

fn parse_seed(flags: &HashMap<String, String>) -> u64 {
    flags
        .get("seed")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(42)
}

fn load_network(arg: &str, flags: &HashMap<String, String>) -> (String, arp_roadnet::RoadNetwork) {
    if arg.ends_with(".arn") {
        let net = arp_roadnet::io::load_network(std::path::Path::new(arg)).unwrap_or_else(|e| {
            eprintln!("cannot load {arg}: {e}");
            std::process::exit(1);
        });
        (arg.to_string(), net)
    } else {
        let city: City = arg.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            usage();
        });
        let g = citygen::generate(city, parse_scale(flags), parse_seed(flags));
        (g.name, g.network)
    }
}

fn parse_point(s: &str) -> Point {
    let Some((lon, lat)) = s.split_once(',') else {
        eprintln!("expected LON,LAT, got {s:?}");
        usage();
    };
    match (lon.trim().parse(), lat.trim().parse()) {
        (Ok(lon), Ok(lat)) => Point::new(lon, lat),
        _ => {
            eprintln!("bad coordinates {s:?}");
            usage();
        }
    }
}

fn cmd_generate(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(city_arg) = positional.first() else {
        usage()
    };
    let (name, net) = load_network(city_arg, flags);
    println!(
        "{name}: {} nodes, {} edges, {:.0} km of road, bbox {:.4}..{:.4} lon {:.4}..{:.4} lat",
        net.num_nodes(),
        net.num_edges(),
        net.total_length_km(),
        net.bbox().min_lon,
        net.bbox().max_lon,
        net.bbox().min_lat,
        net.bbox().max_lat,
    );
    if let Some(out) = flags.get("out") {
        arp_roadnet::io::save_network(&net, std::path::Path::new(out)).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        println!("written to {out}");
    }
    ExitCode::SUCCESS
}

fn cmd_export_osm(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(city_arg) = positional.first() else {
        usage()
    };
    let Some(out) = flags.get("out") else {
        eprintln!("export-osm requires --out FILE");
        usage();
    };
    let (_, net) = load_network(city_arg, flags);
    let xml = arp_osm::writer::write_osm_xml(&arp_osm::export::network_to_osm(&net));
    std::fs::write(out, xml).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("OSM XML written to {out}");
    ExitCode::SUCCESS
}

fn cmd_route(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(net_arg) = positional.first() else {
        usage()
    };
    let (Some(from), Some(to)) = (flags.get("from"), flags.get("to")) else {
        eprintln!("route requires --from and --to");
        usage();
    };
    let (name, net) = load_network(net_arg, flags);
    let index = SpatialIndex::build(&net);
    let s = index
        .nearest_node_within(&net, parse_point(from), 3_000.0)
        .map(|(n, _)| n)
        .unwrap_or_else(|| {
            eprintln!("--from is not near any road of {name}");
            std::process::exit(1);
        });
    let t = index
        .nearest_node_within(&net, parse_point(to), 3_000.0)
        .map(|(n, _)| n)
        .unwrap_or_else(|| {
            eprintln!("--to is not near any road of {name}");
            std::process::exit(1);
        });

    let k = flags
        .get("k")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(3);
    let query = AltQuery::paper().with_k(k);
    let technique = flags
        .get("technique")
        .map(String::as_str)
        .unwrap_or("plateaus");
    let weights = net.weights();
    let paths: Vec<Path> = match technique {
        "plateaus" => plateau_alternatives(&net, weights, s, t, &query, &PlateauOptions::default()),
        "penalty" => penalty_alternatives(&net, weights, s, t, &query, &PenaltyOptions::default()),
        "dissimilarity" => dissimilarity_alternatives(
            &net,
            weights,
            s,
            t,
            &query,
            &DissimilarityOptions::default(),
        ),
        "esx" => esx_alternatives(&net, weights, s, t, &query, &EsxOptions::default()),
        "yen" => yen_k_shortest_paths(&net, weights, s, t, k),
        "pareto" => pareto_paths(&net, weights, s, t, &ParetoOptions::default())
            .map(|rs| rs.into_iter().map(|r| r.path).collect()),
        "google" => GoogleLikeProvider::new(&net, parse_seed(flags))
            .alternatives(&net, weights, s, t, &query)
            .map(|rs| rs.into_iter().map(|r| r.path).collect()),
        other => {
            eprintln!("unknown technique {other:?}");
            usage();
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("routing failed: {e}");
        std::process::exit(1);
    });

    println!("{technique} routes {s} -> {t} on {name}:");
    for (i, p) in paths.iter().enumerate() {
        println!(
            "  route {}: {:>3} min  {:>6.1} km  {:>3} turns  {} vertices",
            i + 1,
            ms_to_display_minutes(p.cost_under(weights)),
            p.length_m(&net) / 1000.0,
            turn_count(&net, p, 45.0),
            p.nodes.len()
        );
    }

    if let Some(out) = flags.get("geojson") {
        // Reuse the demo GeoJSON by wrapping paths as one approach.
        let resp = arp_demo::query::QueryResponse {
            source: s,
            target: t,
            truncated: false,
            degraded: false,
            lane_status: Vec::new(),
            epoch: 0,
            fastest_minutes: paths
                .first()
                .map(|p| ms_to_display_minutes(p.cost_under(weights)))
                .unwrap_or(0),
            approaches: vec![arp_demo::query::ApproachRoutes {
                label: 'A',
                routes: paths
                    .iter()
                    .enumerate()
                    .map(|(rank, p)| arp_demo::query::RouteInfo {
                        minutes: ms_to_display_minutes(p.cost_under(weights)),
                        cost_ms: p.cost_under(weights),
                        polyline: p.nodes.iter().map(|&n| net.point(n)).collect(),
                        color: arp_demo::query::ROUTE_COLORS
                            [rank % arp_demo::query::ROUTE_COLORS.len()],
                        edges: p.edges.clone(),
                    })
                    .collect(),
            }],
        };
        std::fs::write(out, response_to_geojson(&resp)).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        println!("geojson written to {out}");
    }
    ExitCode::SUCCESS
}

fn cmd_study(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(city_arg) = positional.first() else {
        usage()
    };
    let (name, net) = load_network(city_arg, flags);
    let seed = parse_seed(flags);
    println!(
        "running a user study on {name} ({} nodes)…",
        net.num_nodes()
    );
    let providers = standard_providers(&net, seed);
    let config = StudyConfig {
        seed,
        query: AltQuery::paper(),
        resident_bins: [12, 24, 10],
        nonresident_bins: [8, 8, 8],
    };
    let outcome = run_study(
        &net,
        &providers,
        &config,
        &Calibration::from_paper_targets(),
    );
    println!("{}", render(&table1(&outcome)));
    println!("{}", render_anova(&anova_report(&outcome)));
    ExitCode::SUCCESS
}

fn cmd_serve(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(city_arg) = positional.first() else {
        usage()
    };
    let (name, net) = load_network(city_arg, flags);
    let port: u16 = flags
        .get("port")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(8765);
    let flag_usize = |key: &str, default: usize| -> usize {
        flags
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(default)
    };
    let defaults = arp_serve::ServeConfig::default();
    // `--faults 'lane.penalty=flaky:0.2,cache.get=error:down'` arms
    // failpoints for chaos drills; absent, injection costs one branch.
    let faults = flags
        .get("faults")
        .map(|spec| {
            arp_serve::FaultPlan::parse(spec).unwrap_or_else(|e| {
                eprintln!("bad --faults spec: {e}");
                usage()
            })
        })
        .unwrap_or_default();
    // Request tracing: `--trace-sample 0.1` head-keeps 10% of requests
    // (slow/degraded/failed ones are always kept by the tail rules),
    // `--trace-buffer` sizes the debug ring, `--slow-ms` sets the
    // slow-request log threshold (0 turns the log line off). A sample
    // rate of exactly 0 with slow-ms 0 still traces — tail rules keep
    // every non-ok request for `/api/trace/<id>`.
    let trace = arp_obs::TraceConfig {
        sample: flags
            .get("trace-sample")
            .map(|v| match v.parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => r,
                _ => {
                    eprintln!("--trace-sample must be a rate in [0, 1], got {v:?}");
                    usage()
                }
            })
            .unwrap_or(defaults.trace.sample),
        buffer: flag_usize("trace-buffer", defaults.trace.buffer),
        slow_ms: flags
            .get("slow-ms")
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(defaults.trace.slow_ms),
        ..defaults.trace
    };
    let config = arp_serve::ServeConfig {
        workers: flag_usize("workers", defaults.workers),
        queue_capacity: flag_usize("queue", defaults.queue_capacity),
        // `--cache 0` disables the route cache.
        cache_capacity: flag_usize("cache", defaults.cache_capacity),
        faults,
        trace,
        ..defaults
    };
    println!(
        "serving config: {} workers, queue {}, cache {} entries, tracing {:.0}% sample / {} ring / slow at {} ms{}",
        config.workers,
        config.queue_capacity,
        config.cache_capacity,
        config.trace.sample * 100.0,
        config.trace.buffer,
        config.trace.slow_ms,
        if config.faults.is_enabled() {
            ", fault injection ARMED"
        } else {
            ""
        }
    );
    // `--ch off` disables the CH index tier; on (the default), the
    // topology is contracted and the current epoch customized before the
    // listener binds, so the very first request already rides the fast
    // path. Responses are byte-identical either way — the tier only
    // changes how substrates are computed.
    let ch_enabled = match flags.get("ch").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            eprintln!("--ch must be `on` or `off`, got {other:?}");
            usage();
        }
    };
    let mut processor = QueryProcessor::new(name.clone(), net, parse_seed(flags));
    // `--state-dir DIR` makes the traffic state durable: recover from the
    // directory's snapshot + journal, then journal every accepted delta
    // before its epoch publishes. Runs **before** the CH index tier so
    // the hierarchy customizes from the recovered epoch, not epoch 0.
    if let Some(dir) = flags.get("state-dir") {
        let mut durability = arp_traffic::DurabilityConfig::new(dir);
        if let Some(spec) = flags.get("fsync") {
            durability.fsync = arp_traffic::FsyncPolicy::parse(spec).unwrap_or_else(|e| {
                eprintln!("bad --fsync spec: {e}");
                usage()
            });
        }
        durability.snapshot_every =
            flag_usize("snapshot-every", durability.snapshot_every as usize) as u64;
        processor = processor
            .with_traffic_durability(durability)
            .unwrap_or_else(|e| {
                eprintln!("cannot recover traffic state from {dir}: {e}");
                std::process::exit(1);
            });
        let report = processor
            .recovery_report()
            .expect("durability just enabled");
        println!(
            "traffic state recovered from {dir}: {} (epoch {}, {} records replayed, {} torn tails, {} quarantined) in {} ms",
            report.status.as_str(),
            report.epoch,
            report.replayed_records,
            report.torn_tails,
            report.quarantined.len(),
            report.duration_ms
        );
        for file in &report.quarantined {
            eprintln!("  quarantined: {file} (triage per docs/OPERATIONS.md)");
        }
    }
    if ch_enabled {
        processor = processor.with_ch_index();
        let index = processor.ch_index().expect("just enabled");
        println!(
            "CH index tier on: {} hierarchy arcs, metric ready at epoch {}",
            index.topology().num_arcs(),
            index.ready_epoch()
        );
    }
    let app = std::sync::Arc::new(DemoApp::with_config(processor, config));
    // `--traffic-tick-ms 2000` turns the deterministic feed on: a ticker
    // thread advances the rush-hour schedule (24 ticks/day, morphology
    // from the city name) every interval, bumping the graph epoch.
    // `--traffic-seed` varies the schedule; 0 ms (the default) leaves the
    // feed off and the server at epoch 0 — byte-identical to pre-traffic
    // serving. Operators can always push explicit deltas through
    // `POST /api/traffic`, ticker or not.
    let tick_ms = flag_usize("traffic-tick-ms", 0);
    if tick_ms > 0 {
        let feed_seed = flags
            .get("traffic-seed")
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or_else(|| parse_seed(flags));
        let profile = arp_traffic::CityProfile::for_city_name(&name);
        let feed = arp_traffic::TrafficFeed::new(feed_seed, profile);
        let app = std::sync::Arc::clone(&app);
        println!("traffic feed on: {profile:?} profile, seed {feed_seed}, tick every {tick_ms} ms");
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_millis(tick_ms as u64));
            match app.processor.traffic().advance_tick(&feed) {
                Ok(outcome) => {
                    app.service().note_epoch_invalidations();
                    println!(
                        "traffic tick → epoch {}, {} ops applied, {} expired, {} closures",
                        outcome.epoch, outcome.applied, outcome.expired, outcome.closures_active
                    );
                }
                Err(e) => eprintln!("traffic tick failed: {e}"),
            }
        });
    }
    let listener = std::net::TcpListener::bind(("127.0.0.1", port)).unwrap_or_else(|e| {
        eprintln!("cannot bind port {port}: {e}");
        std::process::exit(1);
    });
    println!("{name} demo at http://127.0.0.1:{port}/");
    // A final snapshot on drain makes the *next* startup's recovery a
    // plain snapshot load instead of a journal replay. No-op (returns
    // false) when the state is not durable.
    let shutdown = arp_serve::ShutdownHandle::new();
    {
        let app = std::sync::Arc::clone(&app);
        shutdown.on_drain(move || match app.processor.traffic().flush_snapshot() {
            Ok(true) => println!("final traffic snapshot flushed"),
            Ok(false) => {}
            Err(e) => eprintln!("final traffic snapshot failed: {e}"),
        });
    }
    serve_with_shutdown(app, listener, shutdown).unwrap();
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    let (positional, flags) = parse_args(cmd, rest).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    });
    match cmd.as_str() {
        "generate" => cmd_generate(&positional, &flags),
        "export-osm" => cmd_export_osm(&positional, &flags),
        "route" => cmd_route(&positional, &flags),
        "study" => cmd_study(&positional, &flags),
        "serve" => cmd_serve(&positional, &flags),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn known_flags_and_positionals_parse() {
        let (positional, flags) = parse_args(
            "serve",
            &argv(&["melbourne", "--port", "9000", "--traffic-tick-ms", "250"]),
        )
        .unwrap();
        assert_eq!(positional, vec!["melbourne"]);
        assert_eq!(flags.get("port").map(String::as_str), Some("9000"));
        assert_eq!(
            flags.get("traffic-tick-ms").map(String::as_str),
            Some("250")
        );
    }

    /// The first historical bug: an unknown flag was silently ignored, so
    /// a typo like `--trafic-tick-ms` left the feed off without a word.
    #[test]
    fn unknown_flag_is_rejected_not_ignored() {
        let err = parse_args("serve", &argv(&["melbourne", "--trafic-tick-ms", "250"]))
            .expect_err("typo'd flag must not be swallowed");
        assert!(err.contains("--trafic-tick-ms"), "{err}");
        assert!(
            err.contains("--traffic-tick-ms"),
            "the hint lists accepted flags: {err}"
        );
    }

    /// The second historical bug: `--key` missing its value swallowed the
    /// next `--flag` as the value (`--traffic-tick-ms --workers 4` parsed
    /// as tick "--workers" plus a stray positional "4").
    #[test]
    fn flag_missing_its_value_does_not_swallow_the_next_flag() {
        let err = parse_args(
            "serve",
            &argv(&["melbourne", "--traffic-tick-ms", "--workers", "4"]),
        )
        .expect_err("a flag is not a value");
        assert!(err.contains("missing value for --traffic-tick-ms"), "{err}");

        let err = parse_args("serve", &argv(&["melbourne", "--port"]))
            .expect_err("trailing flag has no value");
        assert!(err.contains("missing value for --port"), "{err}");
    }

    /// The durability flags parse on `serve` and only on `serve`.
    #[test]
    fn durability_flags_are_serve_only() {
        let (_, flags) = parse_args(
            "serve",
            &argv(&[
                "dhaka",
                "--state-dir",
                "/var/lib/arp",
                "--fsync",
                "interval:16",
                "--snapshot-every",
                "64",
            ]),
        )
        .unwrap();
        assert_eq!(
            flags.get("state-dir").map(String::as_str),
            Some("/var/lib/arp")
        );
        assert_eq!(flags.get("fsync").map(String::as_str), Some("interval:16"));
        assert_eq!(flags.get("snapshot-every").map(String::as_str), Some("64"));
        assert!(parse_args("route", &argv(&["dhaka", "--state-dir", "/x"])).is_err());
        assert!(parse_args("study", &argv(&["dhaka", "--fsync", "never"])).is_err());
    }

    /// The tracing flags parse on `serve` and only on `serve`.
    #[test]
    fn tracing_flags_are_serve_only() {
        let (_, flags) = parse_args(
            "serve",
            &argv(&[
                "copenhagen",
                "--trace-sample",
                "0.1",
                "--trace-buffer",
                "512",
                "--slow-ms",
                "250",
            ]),
        )
        .unwrap();
        assert_eq!(flags.get("trace-sample").map(String::as_str), Some("0.1"));
        assert_eq!(flags.get("trace-buffer").map(String::as_str), Some("512"));
        assert_eq!(flags.get("slow-ms").map(String::as_str), Some("250"));
        assert!(parse_args("route", &argv(&["dhaka", "--trace-sample", "1"])).is_err());
        assert!(parse_args("study", &argv(&["dhaka", "--slow-ms", "10"])).is_err());
    }

    /// Allowlists are per-subcommand: a serve-only flag is an error on
    /// `route`, and negative-looking values (single dash) stay values.
    #[test]
    fn allowlists_are_per_subcommand() {
        assert!(parse_args("route", &argv(&["melbourne", "--workers", "4"])).is_err());
        assert!(parse_args("study", &argv(&["dhaka", "--seed", "7"])).is_ok());
        assert!(parse_args("nonsense", &argv(&[])).is_err());
        let (_, flags) = parse_args(
            "route",
            &argv(&["melbourne", "--from", "-37.8,144.9", "--to", "-37.7,145.0"]),
        )
        .unwrap();
        assert_eq!(flags.get("from").map(String::as_str), Some("-37.8,144.9"));
    }
}
