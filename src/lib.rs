#![warn(missing_docs)]
//! # alt-route-planner
//!
//! A complete, from-scratch Rust reproduction of *"Comparing Alternative
//! Route Planning Techniques"* (ICDE 2022): the road-network substrate,
//! the three published alternative-route techniques (Penalty, Plateaus,
//! Dissimilarity/SSVP-D+) plus a Google-Maps-like provider, the web demo
//! system, and the user-study + statistics apparatus that regenerates the
//! paper's tables and ANOVA.
//!
//! This facade crate re-exports the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`roadnet`] | CSR road networks, geometry, categories, travel-time weights |
//! | [`citygen`] | deterministic Melbourne / Dhaka / Copenhagen generators |
//! | [`osm`] | OSM XML parse/write, rectangle filter, network constructor |
//! | [`core`] | Dijkstra/A*/SPTs, Penalty, Plateaus, SSVP-D+, Yen, providers |
//! | [`obs`] | counters/gauges/histograms, Prometheus text exposition |
//! | [`userstudy`] | participants, sampling, calibration, Tables 1–3, ANOVA |
//! | [`demo`] | query processor, A–D blinding, HTTP server, response store |
//!
//! ## Quickstart
//!
//! ```
//! use alt_route_planner::prelude::*;
//!
//! // 1. A deterministic synthetic Melbourne.
//! let city = citygen::generate(City::Melbourne, Scale::Tiny, 42);
//! let net = &city.network;
//!
//! // 2. Pick a query with the spatial index (geo-coordinate matching).
//! let index = SpatialIndex::build(net);
//! let bb = net.bbox();
//! let s = index.nearest_node(net, Point::new(bb.min_lon + bb.width_deg() * 0.2,
//!                                            bb.min_lat + bb.height_deg() * 0.2)).unwrap();
//! let t = index.nearest_node(net, Point::new(bb.min_lon + bb.width_deg() * 0.8,
//!                                            bb.min_lat + bb.height_deg() * 0.8)).unwrap();
//!
//! // 3. Alternative routes with the paper's parameters.
//! let query = AltQuery::paper();
//! let routes = plateau_alternatives(net, net.weights(), s, t, &query,
//!                                   &PlateauOptions::default()).unwrap();
//! assert!(!routes.is_empty());
//! ```

pub use arp_citygen as citygen;
pub use arp_core as core;
pub use arp_demo as demo;
pub use arp_obs as obs;
pub use arp_osm as osm;
pub use arp_roadnet as roadnet;
pub use arp_userstudy as userstudy;

/// One-stop import for examples and downstream experiments.
pub mod prelude {
    pub use arp_citygen::{self as citygen, City, GeneratedCity, Scale};
    pub use arp_core::prelude::*;
    pub use arp_demo::prelude::*;
    pub use arp_roadnet::prelude::*;
    pub use arp_userstudy::prelude::*;
}
